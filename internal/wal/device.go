package wal

import (
	"fmt"
	"os"
	"sync"

	"hydra/internal/obs"
)

// Device is the stable storage the log is flushed to. Offsets are
// LSNs: the log file image is the concatenation of all records.
type Device interface {
	// WriteAt writes b at the given log offset.
	WriteAt(b []byte, off int64) (int, error)
	// ReadAt reads into b from the given log offset. Short reads at
	// end of log return io.EOF semantics via n < len(b).
	ReadAt(b []byte, off int64) (int, error)
	// Sync makes preceding writes durable.
	Sync() error
	// Size returns the current log length in bytes.
	Size() (int64, error)
	// Close releases the device.
	Close() error
}

// VectorWriter is the optional batched-submission interface: a device
// implementing it accepts a whole flush group — several (offset,
// buffer) pairs — as one call, so the flush daemon issues one
// submission per wakeup instead of one syscall per ring slice. The
// pairs must be sorted by offset and non-overlapping (the flusher's
// wrap-around slices are contiguous, which lets implementations
// gather adjacent pairs into single writes). The emulation today is
// gather-into-staging + pwrite per contiguous run; the interface is
// shaped so a pwritev or io_uring backend can slot in without
// touching the flush daemon.
type VectorWriter interface {
	// WriteVec writes each bufs[i] at offs[i] and returns the total
	// bytes written. len(offs) must equal len(bufs).
	WriteVec(offs []int64, bufs [][]byte) (int, error)
}

// DeviceStats are cumulative per-device submission counters — the
// syscall-shaped events behind a flush. They are the ground truth for
// the "1 vectored submission per touched segment, fsync only dirty"
// claim: obs-striped counters the Log surfaces through StatsSnapshot
// so /metrics and hydra-top can show submissions per flush live.
type DeviceStats struct {
	Writes       uint64 // physical write submissions (one per contiguous run / segment file)
	VecWrites    uint64 // WriteVec calls (batched submissions)
	Syncs        uint64 // Sync calls
	SegSyncs     uint64 // segment files actually fsynced
	SegSyncSkips uint64 // live segments skipped at Sync because clean
}

// StatsReporter is the optional device-counter surface.
type StatsReporter interface {
	DeviceStats() DeviceStats
}

// devCounters is the embedded obs-backed counter block shared by the
// Device implementations.
type devCounters struct {
	writes, vecWrites, syncs obs.Counter
	segSyncs, segSyncSkips   obs.Counter
}

func (c *devCounters) DeviceStats() DeviceStats {
	return DeviceStats{
		Writes:       c.writes.Load(),
		VecWrites:    c.vecWrites.Load(),
		Syncs:        c.syncs.Load(),
		SegSyncs:     c.segSyncs.Load(),
		SegSyncSkips: c.segSyncSkips.Load(),
	}
}

// FileDevice is a Device backed by a regular file.
type FileDevice struct {
	f *os.File

	// vecMu guards the staging buffer reused across WriteVec calls
	// (one flusher normally calls it, but the device must stay safe
	// under concurrent use). It is held across the write on purpose:
	// the staging buffer IS the IO buffer, so releasing before the
	// pwrite would let the next gather scribble over in-flight data.
	//
	//hydra:vet:coarse -- staging buffer doubles as the IO buffer; the write must complete before the next gather reuses it
	vecMu  sync.Mutex
	vecBuf []byte

	stats devCounters
}

// OpenFile opens (creating if needed) a file-backed log device.
func OpenFile(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &FileDevice{f: f}, nil
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(b []byte, off int64) (int, error) {
	d.stats.writes.Inc()
	return d.f.WriteAt(b, off)
}

// WriteVec implements VectorWriter: adjacent pairs are gathered into
// a staging buffer and written with one pwrite per contiguous run —
// the portable emulation of pwritev. A single-pair vector degenerates
// to one plain write with no copy.
func (d *FileDevice) WriteVec(offs []int64, bufs [][]byte) (int, error) {
	if len(offs) != len(bufs) {
		return 0, fmt.Errorf("wal: WriteVec: %d offsets for %d buffers", len(offs), len(bufs))
	}
	d.stats.vecWrites.Inc()
	written := 0
	d.vecMu.Lock()
	defer d.vecMu.Unlock()
	for i := 0; i < len(offs); {
		// Extend the run while the next pair is adjacent.
		j, end := i+1, offs[i]+int64(len(bufs[i]))
		for j < len(offs) && offs[j] == end {
			end += int64(len(bufs[j]))
			j++
		}
		var run []byte
		if j == i+1 {
			run = bufs[i] // single buffer: write in place, no copy
		} else {
			need := int(end - offs[i])
			if cap(d.vecBuf) < need {
				d.vecBuf = make([]byte, need)
			}
			run = d.vecBuf[:0]
			for k := i; k < j; k++ {
				run = append(run, bufs[k]...)
			}
		}
		d.stats.writes.Inc()
		n, err := d.f.WriteAt(run, offs[i])
		written += n
		if err != nil {
			return written, fmt.Errorf("wal: vectored write at %d: %w", offs[i], err)
		}
		i = j
	}
	return written, nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(b []byte, off int64) (int, error) { return d.f.ReadAt(b, off) }

// Sync implements Device.
func (d *FileDevice) Sync() error {
	d.stats.syncs.Inc()
	return d.f.Sync()
}

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// DeviceStats implements StatsReporter.
func (d *FileDevice) DeviceStats() DeviceStats { return d.stats.DeviceStats() }

// MemDevice is an in-memory Device for tests and for CPU-bound
// experiments that must exclude disk latency. An optional per-sync
// artificial latency models a disk for group-commit experiments.
type MemDevice struct {
	mu        sync.Mutex
	data      []byte
	syncs     int
	writes    int    // write submissions (WriteAt calls + one per WriteVec)
	vecWrites int    // WriteVec calls
	SyncFn    func() // optional hook invoked (unlocked) on every Sync
	failAt    int64  // if >0, writes past this offset fail (fault injection)
	failErr   error
}

// NewMem returns an empty in-memory device.
func NewMem() *MemDevice { return &MemDevice{} }

// FailAfter arranges for any write that would extend the device past
// off to fail with err, simulating a full or dying disk.
func (d *MemDevice) FailAfter(off int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAt, d.failErr = off, err
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(b []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	return d.writeAtLocked(b, off)
}

func (d *MemDevice) writeAtLocked(b []byte, off int64) (int, error) {
	end := off + int64(len(b))
	if d.failAt > 0 && end > d.failAt {
		return 0, d.failErr
	}
	if end > int64(len(d.data)) {
		if end > int64(cap(d.data)) {
			// Amortized doubling: naive reallocation would make every
			// small append O(device size).
			newCap := 2 * cap(d.data)
			if int64(newCap) < end {
				newCap = int(end)
			}
			grown := make([]byte, end, newCap)
			copy(grown, d.data)
			d.data = grown
		} else {
			d.data = d.data[:end]
		}
	}
	copy(d.data[off:], b)
	return len(b), nil
}

// WriteVec implements VectorWriter: the whole vector lands in one
// submission (memory has no seek cost, so no gathering is needed —
// the counter is what matters for tests asserting batch shape).
func (d *MemDevice) WriteVec(offs []int64, bufs [][]byte) (int, error) {
	if len(offs) != len(bufs) {
		return 0, fmt.Errorf("wal: WriteVec: %d offsets for %d buffers", len(offs), len(bufs))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.vecWrites++
	d.writes++
	written := 0
	for i, b := range bufs {
		n, err := d.writeAtLocked(b, offs[i])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(b []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off >= int64(len(d.data)) {
		return 0, nil
	}
	n := copy(b, d.data[off:])
	return n, nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	d.syncs++
	fn := d.SyncFn
	d.mu.Unlock()
	if fn != nil {
		fn()
	}
	return nil
}

// Syncs returns the number of Sync calls, for asserting group-commit
// batching in tests.
func (d *MemDevice) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Writes returns the number of write submissions (a WriteVec call
// counts once, whatever its vector length), for asserting flush batch
// shape in tests.
func (d *MemDevice) Writes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// VecWrites returns the number of WriteVec calls.
func (d *MemDevice) VecWrites() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.vecWrites
}

// DeviceStats implements StatsReporter.
func (d *MemDevice) DeviceStats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DeviceStats{
		Writes:    uint64(d.writes),
		VecWrites: uint64(d.vecWrites),
		Syncs:     uint64(d.syncs),
	}
}

// Size implements Device.
func (d *MemDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.data)), nil
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Truncate cuts the device at off, simulating a crash that lost the
// tail (including torn writes when off lands mid-record).
func (d *MemDevice) Truncate(off int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < int64(len(d.data)) {
		d.data = d.data[:off]
	}
}
