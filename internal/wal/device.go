package wal

import (
	"fmt"
	"os"
	"sync"
)

// Device is the stable storage the log is flushed to. Offsets are
// LSNs: the log file image is the concatenation of all records.
type Device interface {
	// WriteAt writes b at the given log offset.
	WriteAt(b []byte, off int64) (int, error)
	// ReadAt reads into b from the given log offset. Short reads at
	// end of log return io.EOF semantics via n < len(b).
	ReadAt(b []byte, off int64) (int, error)
	// Sync makes preceding writes durable.
	Sync() error
	// Size returns the current log length in bytes.
	Size() (int64, error)
	// Close releases the device.
	Close() error
}

// FileDevice is a Device backed by a regular file.
type FileDevice struct {
	f *os.File
}

// OpenFile opens (creating if needed) a file-backed log device.
func OpenFile(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &FileDevice{f: f}, nil
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(b []byte, off int64) (int, error) { return d.f.WriteAt(b, off) }

// ReadAt implements Device.
func (d *FileDevice) ReadAt(b []byte, off int64) (int, error) { return d.f.ReadAt(b, off) }

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// MemDevice is an in-memory Device for tests and for CPU-bound
// experiments that must exclude disk latency. An optional per-sync
// artificial latency models a disk for group-commit experiments.
type MemDevice struct {
	mu      sync.Mutex
	data    []byte
	syncs   int
	SyncFn  func() // optional hook invoked (unlocked) on every Sync
	failAt  int64  // if >0, writes past this offset fail (fault injection)
	failErr error
}

// NewMem returns an empty in-memory device.
func NewMem() *MemDevice { return &MemDevice{} }

// FailAfter arranges for any write that would extend the device past
// off to fail with err, simulating a full or dying disk.
func (d *MemDevice) FailAfter(off int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAt, d.failErr = off, err
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(b []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(b))
	if d.failAt > 0 && end > d.failAt {
		return 0, d.failErr
	}
	if end > int64(len(d.data)) {
		if end > int64(cap(d.data)) {
			// Amortized doubling: naive reallocation would make every
			// small append O(device size).
			newCap := 2 * cap(d.data)
			if int64(newCap) < end {
				newCap = int(end)
			}
			grown := make([]byte, end, newCap)
			copy(grown, d.data)
			d.data = grown
		} else {
			d.data = d.data[:end]
		}
	}
	copy(d.data[off:], b)
	return len(b), nil
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(b []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off >= int64(len(d.data)) {
		return 0, nil
	}
	n := copy(b, d.data[off:])
	return n, nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	d.syncs++
	fn := d.SyncFn
	d.mu.Unlock()
	if fn != nil {
		fn()
	}
	return nil
}

// Syncs returns the number of Sync calls, for asserting group-commit
// batching in tests.
func (d *MemDevice) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Size implements Device.
func (d *MemDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.data)), nil
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Truncate cuts the device at off, simulating a crash that lost the
// tail (including torn writes when off lands mid-record).
func (d *MemDevice) Truncate(off int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < int64(len(d.data)) {
		d.data = d.data[:off]
	}
}
