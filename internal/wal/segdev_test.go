package wal

import (
	"bytes"
	"path/filepath"
	"testing"
)

func newSegDev(t *testing.T, segSize int64) *SegmentedDevice {
	t.Helper()
	d, err := OpenSegmented(filepath.Join(t.TempDir(), "wal"), segSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestSegmentedWriteReadAcrossBoundaries(t *testing.T) {
	d := newSegDev(t, 100)
	data := bytes.Repeat([]byte("abcdefghij"), 35) // 350 bytes: 4 segments
	if _, err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Size(); n != 350 {
		t.Fatalf("size = %d", n)
	}
	if d.Segments() != 4 {
		t.Fatalf("segments = %d", d.Segments())
	}
	back := make([]byte, 350)
	if n, err := d.ReadAt(back, 0); n != 350 || err != nil {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}
	// Unaligned read crossing two boundaries.
	part := make([]byte, 150)
	if n, _ := d.ReadAt(part, 95); n != 150 {
		t.Fatalf("cross read = %d", n)
	}
	if !bytes.Equal(part, data[95:245]) {
		t.Fatal("cross-boundary read mismatch")
	}
}

func TestSegmentedReopenResumes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	d, err := OpenSegmented(dir, 128)
	if err != nil {
		t.Fatal(err)
	}
	d.WriteAt(bytes.Repeat([]byte("x"), 300), 0)
	d.Sync()
	d.Close()

	d2, err := OpenSegmented(dir, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n, _ := d2.Size(); n != 300 {
		t.Fatalf("reopened size = %d", n)
	}
	back := make([]byte, 300)
	if n, _ := d2.ReadAt(back, 0); n != 300 || back[299] != 'x' {
		t.Fatalf("reopened read = %d", n)
	}
}

func TestSegmentedTruncateBefore(t *testing.T) {
	d := newSegDev(t, 100)
	d.WriteAt(bytes.Repeat([]byte("y"), 1000), 0) // 10 segments
	removed, err := d.TruncateBefore(450)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 { // segments [0,100) .. [300,400) lie fully below 450
		t.Fatalf("removed %d segments", removed)
	}
	if d.Base() != 400 {
		t.Fatalf("base = %d", d.Base())
	}
	// Reads above the truncation point still work.
	back := make([]byte, 100)
	if n, err := d.ReadAt(back, 500); n != 100 || err != nil {
		t.Fatalf("read above truncation: %d, %v", n, err)
	}
	// Reads below fail loudly.
	if _, err := d.ReadAt(back, 50); err == nil {
		t.Fatal("read below truncation succeeded")
	}
	// Size is unchanged (logical end of log).
	if n, _ := d.Size(); n != 1000 {
		t.Fatalf("size after truncation = %d", n)
	}
}

func TestSegmentedAsLogDevice(t *testing.T) {
	// Full stack: a Log over a segmented device, with scan-back.
	d := newSegDev(t, 4096)
	l, err := New(d, Options{Kind: Consolidated, BufferSize: 1 << 20, SyncOnFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(i), Payload: bytes.Repeat([]byte("p"), 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Segments() < 2 {
		t.Fatalf("only %d segments for ~30KB of log", d.Segments())
	}
	recs, err := ScanAll(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("scanned %d records", len(recs))
	}
	// Truncate below the 100th record and scan from there.
	cut := recs[100].LSN
	if _, err := d.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	start := LSN(d.Base())
	// Find the first whole record at or after base.
	var from LSN
	for _, r := range recs {
		if int64(r.LSN) >= d.Base() {
			from = r.LSN
			break
		}
	}
	_ = start
	tail, err := ScanAll(d, from)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) == 0 || tail[len(tail)-1].TxnID != 199 {
		t.Fatalf("tail scan lost records: %d", len(tail))
	}
}

// Property: arbitrary write/read patterns against the segmented
// device agree with a flat reference buffer.
func TestSegmentedAgainstReferenceModel(t *testing.T) {
	d := newSegDev(t, 257) // deliberately odd segment size
	ref := make([]byte, 0, 1<<16)
	src := rngNew(77)
	for op := 0; op < 2000; op++ {
		off := int64(src.Intn(1 << 14))
		n := src.IntRange(1, 600)
		buf := make([]byte, n)
		src.Bytes(buf)
		if _, err := d.WriteAt(buf, off); err != nil {
			t.Fatalf("op %d write: %v", op, err)
		}
		if int(off)+n > len(ref) {
			grown := make([]byte, int(off)+n)
			copy(grown, ref)
			ref = grown
		}
		copy(ref[off:], buf)

		// Random read-back check.
		roff := int64(src.Intn(len(ref)))
		rn := src.IntRange(1, 600)
		if int(roff)+rn > len(ref) {
			rn = len(ref) - int(roff)
		}
		got := make([]byte, rn)
		n2, err := d.ReadAt(got, roff)
		if err != nil || n2 != rn {
			t.Fatalf("op %d read at %d: %d, %v", op, roff, n2, err)
		}
		if !bytes.Equal(got, ref[roff:int(roff)+rn]) {
			t.Fatalf("op %d: mismatch at %d..%d", op, roff, int(roff)+rn)
		}
	}
	if sz, _ := d.Size(); sz != int64(len(ref)) {
		t.Fatalf("size %d, ref %d", sz, len(ref))
	}
}

func TestOpenSegmentedErrors(t *testing.T) {
	if _, err := OpenSegmented(t.TempDir(), 0); err == nil {
		t.Fatal("zero segment size accepted")
	}
}

// rngNew avoids importing internal/rng just for this file's property
// test (wal must stay dependency-light).
func rngNew(seed uint64) *miniRand { return &miniRand{s: seed*2654435761 + 1} }

type miniRand struct{ s uint64 }

func (r *miniRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
func (r *miniRand) Intn(n int) int { return int(r.next() % uint64(n)) }
func (r *miniRand) IntRange(lo, hi int) int {
	return lo + r.Intn(hi-lo+1)
}
func (r *miniRand) Bytes(b []byte) {
	for i := range b {
		b[i] = byte(r.next())
	}
}
