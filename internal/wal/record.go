// Package wal implements an ARIES-style write-ahead log. It provides
// both a conventional serial log buffer (one mutex guards allocation
// and copy — the "seemingly serial operation" the paper calls out)
// and a scalable one modelled on Aether: a consolidation array that
// merges concurrent insertions into group allocations, decoupled
// buffer fill so the critical section excludes the memcpy, and a
// pipelined flush daemon with group commit.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// LSN is a log sequence number: the byte offset of a record in the
// log stream. LSN 0 is the first record; NilLSN marks "none".
type LSN uint64

// NilLSN is the absent LSN (e.g. prevLSN of a transaction's first
// record).
const NilLSN = LSN(^uint64(0))

// RecType tags a log record.
type RecType uint8

// Log record types, the standard ARIES set.
const (
	RecBegin         RecType = iota + 1 // transaction begin
	RecUpdate                           // page update with undo+redo images
	RecCommit                           // transaction commit point
	RecAbort                            // transaction abort decision
	RecEnd                              // transaction fully finished
	RecCLR                              // compensation (redo-only undo)
	RecCheckpoint                       // begin-checkpoint marker
	RecCheckpointEnd                    // end-checkpoint with ATT+DPT payload
)

var recNames = map[RecType]string{
	RecBegin: "begin", RecUpdate: "update", RecCommit: "commit",
	RecAbort: "abort", RecEnd: "end", RecCLR: "clr",
	RecCheckpoint: "ckpt-begin", RecCheckpointEnd: "ckpt-end",
}

func (t RecType) String() string {
	if s, ok := recNames[t]; ok {
		return s
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Record is a decoded log record.
type Record struct {
	LSN     LSN
	Type    RecType
	TxnID   uint64
	PrevLSN LSN // previous record of the same transaction
	PageID  uint64
	// UndoNext is used by CLRs: the next record of the transaction to
	// undo. NilLSN elsewhere.
	UndoNext LSN
	Payload  []byte
}

// Header layout:
//
//	0  4  total length (header + payload)
//	4  4  CRC-32C over bytes [8, total)
//	8  1  type
//	9  8  txn id
//	17 8  prevLSN
//	25 8  page id
//	33 8  undoNext
//	41 .. payload
const headerSize = 41

// MaxPayload bounds a single record's payload; larger updates must be
// split by the caller. Keeps any record smaller than the smallest
// supported ring buffer.
const MaxPayload = 256 << 10

// Errors from record encoding/decoding and log scanning.
var (
	ErrPayloadTooBig = errors.New("wal: payload exceeds MaxPayload")
	ErrCorrupt       = errors.New("wal: corrupt record")
	ErrTorn          = errors.New("wal: torn tail")
)

// EncodedSize returns the on-log size of a record with the given
// payload length.
func EncodedSize(payloadLen int) int { return headerSize + payloadLen }

// Encode serializes r (excluding r.LSN, which is implied by position)
// into buf, which must be at least EncodedSize(len(r.Payload)) bytes.
// It returns the number of bytes written.
func Encode(r *Record, buf []byte) (int, error) {
	return encodeFields(buf, r.Type, r.TxnID, r.PrevLSN, r.PageID, r.UndoNext, r.Payload)
}

// encodeFields is Encode without the Record indirection, so hot paths
// can serialize straight from scalar fields.
func encodeFields(buf []byte, typ RecType, txnID uint64, prev LSN, pageID uint64, undoNext LSN, payload []byte) (int, error) {
	if len(payload) > MaxPayload {
		return 0, ErrPayloadTooBig
	}
	total := headerSize + len(payload)
	if len(buf) < total {
		return 0, fmt.Errorf("wal: encode buffer too small: %d < %d", len(buf), total)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(total))
	buf[8] = byte(typ)
	binary.LittleEndian.PutUint64(buf[9:17], txnID)
	binary.LittleEndian.PutUint64(buf[17:25], uint64(prev))
	binary.LittleEndian.PutUint64(buf[25:33], pageID)
	binary.LittleEndian.PutUint64(buf[33:41], uint64(undoNext))
	copy(buf[41:], payload)
	crc := crc32.Checksum(buf[8:total], castagnoli)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return total, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode parses one record from the front of buf. The returned
// record's Payload aliases buf. It returns the encoded length.
// ErrTorn means buf ends mid-record (a legitimate crash artifact);
// ErrCorrupt means the bytes are inconsistent.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < headerSize {
		return Record{}, 0, ErrTorn
	}
	total := int(binary.LittleEndian.Uint32(buf[0:4]))
	if total < headerSize || total > headerSize+MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, total)
	}
	if len(buf) < total {
		return Record{}, 0, ErrTorn
	}
	want := binary.LittleEndian.Uint32(buf[4:8])
	if got := crc32.Checksum(buf[8:total], castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	r := Record{
		Type:     RecType(buf[8]),
		TxnID:    binary.LittleEndian.Uint64(buf[9:17]),
		PrevLSN:  LSN(binary.LittleEndian.Uint64(buf[17:25])),
		PageID:   binary.LittleEndian.Uint64(buf[25:33]),
		UndoNext: LSN(binary.LittleEndian.Uint64(buf[33:41])),
		Payload:  buf[41:total],
	}
	return r, total, nil
}
