package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SegmentedDevice is a Device backed by a directory of fixed-size
// segment files (seg-<startLSN>.wal). Because segments are immutable
// once the log moves past them, whole old segments can be deleted
// after a checkpoint — the log-recycling mechanism every production
// WAL needs and a single flat file cannot provide.
type SegmentedDevice struct {
	dir     string
	segSize int64

	// mu makes segment-map updates atomic with the file operations
	// that realize them (create/delete of segment files).
	//hydra:vet:coarse -- device-level lock: segment rotation must mutate the map and the file set atomically
	mu    sync.Mutex
	segs  map[int64]*os.File // start offset -> file
	size  int64              // logical end of log
	base  int64              // lowest retained offset (truncation point)
	syncs int
}

// OpenSegmented opens (creating if needed) a segmented device in dir.
// segSize is the per-segment capacity in bytes.
func OpenSegmented(dir string, segSize int64) (*SegmentedDevice, error) {
	if segSize <= 0 {
		return nil, fmt.Errorf("wal: segment size must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	d := &SegmentedDevice{dir: dir, segSize: segSize, segs: make(map[int64]*os.File)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []int64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		start, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %s", name)
		}
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i, start := range starts {
		f, err := os.OpenFile(d.segPath(start), os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		d.segs[start] = f
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			d.base = start
		}
		d.size = start + st.Size()
	}
	return d, nil
}

func (d *SegmentedDevice) segPath(start int64) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%020d.wal", start))
}

func (d *SegmentedDevice) segStart(off int64) int64 { return off - off%d.segSize }

// segFor returns (creating if needed) the segment containing off.
// Caller holds d.mu.
func (d *SegmentedDevice) segFor(off int64) (*os.File, error) {
	start := d.segStart(off)
	if f, ok := d.segs[start]; ok {
		return f, nil
	}
	f, err := os.OpenFile(d.segPath(start), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	d.segs[start] = f
	return f, nil
}

// WriteAt implements Device, splitting writes at segment boundaries.
func (d *SegmentedDevice) WriteAt(b []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	written := 0
	for len(b) > 0 {
		start := d.segStart(off)
		f, err := d.segFor(off)
		if err != nil {
			return written, err
		}
		room := start + d.segSize - off
		chunk := b
		if int64(len(chunk)) > room {
			chunk = b[:room]
		}
		if _, err := f.WriteAt(chunk, off-start); err != nil {
			return written, fmt.Errorf("wal: segment write at %d: %w", off, err)
		}
		written += len(chunk)
		off += int64(len(chunk))
		b = b[len(chunk):]
	}
	if off > d.size {
		d.size = off
	}
	return written, nil
}

// ReadAt implements Device, splitting reads at segment boundaries.
// Reads below the truncation point return zero bytes read.
func (d *SegmentedDevice) ReadAt(b []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	read := 0
	for len(b) > 0 && off < d.size {
		start := d.segStart(off)
		room := start + d.segSize - off
		chunk := b
		if int64(len(chunk)) > room {
			chunk = b[:room]
		}
		f, ok := d.segs[start]
		if !ok {
			if start < d.base {
				return read, fmt.Errorf("wal: read at %d below truncation point %d", off, d.base)
			}
			// Never-written segment (sparse region): reads as zeros.
			for i := range chunk {
				chunk[i] = 0
			}
			read += len(chunk)
			off += int64(len(chunk))
			b = b[len(chunk):]
			continue
		}
		n, err := f.ReadAt(chunk, off-start)
		if n < len(chunk) && err != nil {
			// Short segment (sparse tail within a live segment): the
			// remainder reads as zeros up to the chunk length.
			for i := n; i < len(chunk); i++ {
				chunk[i] = 0
			}
			n = len(chunk)
		}
		read += n
		off += int64(n)
		b = b[n:]
	}
	return read, nil
}

// Sync implements Device.
func (d *SegmentedDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncs++
	for _, f := range d.segs {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Size implements Device.
func (d *SegmentedDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size, nil
}

// Close implements Device.
func (d *SegmentedDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, f := range d.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.segs = make(map[int64]*os.File)
	return first
}

// TruncateBefore deletes every segment that lies entirely below lsn.
// The caller guarantees no record at or above its recovery horizon
// lives below lsn (see core's truncation-point computation). It
// returns the number of segments removed.
func (d *SegmentedDevice) TruncateBefore(lsn LSN) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	removed := 0
	for start, f := range d.segs {
		if start+d.segSize <= int64(lsn) {
			if err := f.Close(); err != nil {
				return removed, err
			}
			if err := os.Remove(d.segPath(start)); err != nil {
				return removed, err
			}
			delete(d.segs, start)
			removed++
		}
	}
	if int64(lsn) > d.base {
		d.base = d.segStart(int64(lsn))
	}
	return removed, nil
}

// Base returns the lowest retained log offset.
func (d *SegmentedDevice) Base() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.base
}

// Segments returns the number of live segment files.
func (d *SegmentedDevice) Segments() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.segs)
}
