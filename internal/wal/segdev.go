package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hydra/internal/invariant"
	"hydra/internal/obs"
)

// SegmentedDevice is a Device backed by a directory of fixed-size
// segment files (seg-<startLSN>.wal). Because segments are immutable
// once the log moves past them, whole old segments can be deleted
// after a checkpoint — the log-recycling mechanism every production
// WAL needs and a single flat file cannot provide.
//
// The device tracks which segments have been written since the last
// Sync and fsyncs only those: sync cost scales with dirty data, not
// with log history. (Before this, every group commit fsynced every
// live segment — O(live segments) syscalls per flush.) It also
// implements VectorWriter, turning a whole flush group into one write
// submission per touched segment file.
type SegmentedDevice struct {
	dir     string
	segSize int64

	// mu makes segment-map updates atomic with the file operations
	// that realize them (create/delete of segment files).
	//hydra:vet:coarse -- device-level lock: segment rotation must mutate the map and the file set atomically
	mu    sync.Mutex
	segs  map[int64]*os.File // start offset -> file
	dirty map[int64]struct{} // segments written since the last Sync
	size  int64              // logical end of log
	base  int64              // lowest retained offset (truncation point)

	// WriteVec scratch, reused across calls (guarded by mu).
	vecBuf    []byte
	vecChunks [][]byte

	stats devCounters
}

// OpenSegmented opens (creating if needed) a segmented device in dir.
// segSize is the per-segment capacity in bytes.
func OpenSegmented(dir string, segSize int64) (*SegmentedDevice, error) {
	if segSize <= 0 {
		return nil, fmt.Errorf("wal: segment size must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	d := &SegmentedDevice{
		dir: dir, segSize: segSize,
		segs:  make(map[int64]*os.File),
		dirty: make(map[int64]struct{}),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []int64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		start, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %s", name)
		}
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i, start := range starts {
		f, err := os.OpenFile(d.segPath(start), os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		d.segs[start] = f
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			d.base = start
		}
		d.size = start + st.Size()
	}
	return d, nil
}

func (d *SegmentedDevice) segPath(start int64) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%020d.wal", start))
}

func (d *SegmentedDevice) segStart(off int64) int64 { return off - off%d.segSize }

// lock acquires d.mu with latch profiling and the hydradebug
// tier-order assertion.
func (d *SegmentedDevice) lock() {
	ls := obs.LatchStart(obs.TierWALDevice)
	d.mu.Lock()
	obs.LatchDone(obs.TierWALDevice, ls)
	invariant.Acquired(invariant.TierWALDevice, "wal.SegmentedDevice.mu")
}

func (d *SegmentedDevice) unlock() {
	invariant.Released(invariant.TierWALDevice, "wal.SegmentedDevice.mu")
	d.mu.Unlock()
}

// segFor returns (creating if needed) the segment containing off.
// Caller holds d.mu.
func (d *SegmentedDevice) segFor(off int64) (*os.File, error) {
	start := d.segStart(off)
	if f, ok := d.segs[start]; ok {
		return f, nil
	}
	f, err := os.OpenFile(d.segPath(start), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	d.segs[start] = f
	return f, nil
}

// WriteAt implements Device, splitting writes at segment boundaries.
func (d *SegmentedDevice) WriteAt(b []byte, off int64) (int, error) {
	d.lock()
	defer d.unlock()
	d.stats.writes.Inc()
	written := 0
	for len(b) > 0 {
		start := d.segStart(off)
		f, err := d.segFor(off)
		if err != nil {
			return written, err
		}
		room := start + d.segSize - off
		chunk := b
		if int64(len(chunk)) > room {
			chunk = b[:room]
		}
		if _, err := f.WriteAt(chunk, off-start); err != nil {
			return written, fmt.Errorf("wal: segment write at %d: %w", off, err)
		}
		d.dirty[start] = struct{}{}
		written += len(chunk)
		off += int64(len(chunk))
		b = b[len(chunk):]
	}
	if off > d.size {
		d.size = off
	}
	return written, nil
}

// WriteVec implements VectorWriter: the vector is split at segment
// boundaries and submitted as ONE write per touched segment file —
// a run of several chunks (e.g. the flusher's two wrap-around ring
// slices landing in the same segment) is gathered into a staging
// buffer first; a single-chunk run is written in place with no copy.
func (d *SegmentedDevice) WriteVec(offs []int64, bufs [][]byte) (int, error) {
	if len(offs) != len(bufs) {
		return 0, fmt.Errorf("wal: WriteVec: %d offsets for %d buffers", len(offs), len(bufs))
	}
	d.lock()
	defer d.unlock()
	d.stats.vecWrites.Inc()

	written := 0
	var (
		runStart int64 = -1 // device offset of the pending run
		runLen   int64
	)
	chunks := d.vecChunks[:0]

	flushRun := func() error {
		if runStart < 0 {
			return nil
		}
		f, err := d.segFor(runStart)
		if err != nil {
			return err
		}
		var run []byte
		if len(chunks) == 1 {
			run = chunks[0]
		} else {
			if int64(cap(d.vecBuf)) < runLen {
				d.vecBuf = make([]byte, runLen)
			}
			run = d.vecBuf[:0]
			for _, c := range chunks {
				run = append(run, c...)
			}
			d.vecBuf = run[:0]
		}
		d.stats.writes.Inc()
		if _, err := f.WriteAt(run, runStart-d.segStart(runStart)); err != nil {
			return fmt.Errorf("wal: vectored segment write at %d: %w", runStart, err)
		}
		d.dirty[d.segStart(runStart)] = struct{}{}
		written += len(run)
		if end := runStart + int64(len(run)); end > d.size {
			d.size = end
		}
		runStart, runLen = -1, 0
		chunks = chunks[:0]
		return nil
	}

	for i, b := range bufs {
		off := offs[i]
		for len(b) > 0 {
			start := d.segStart(off)
			room := start + d.segSize - off
			chunk := b
			if int64(len(chunk)) > room {
				chunk = b[:room]
			}
			// A chunk extends the pending run only if contiguous and in
			// the same segment; otherwise the run is submitted first.
			if runStart >= 0 && (off != runStart+runLen || d.segStart(runStart) != start) {
				if err := flushRun(); err != nil {
					d.vecChunks = chunks[:0]
					return written, err
				}
			}
			if runStart < 0 {
				runStart = off
			}
			chunks = append(chunks, chunk)
			runLen += int64(len(chunk))
			off += int64(len(chunk))
			b = b[len(chunk):]
		}
	}
	err := flushRun()
	d.vecChunks = chunks[:0] // keep the grown scratch, drop chunk refs
	return written, err
}

// ReadAt implements Device, splitting reads at segment boundaries.
// Reads below the truncation point return zero bytes read. Each chunk
// is clamped to the logical end of log, so bytes past d.size are
// never reported as read (a sparse or short segment tail within the
// log reads as zeros; beyond the log it is EOF, not data).
func (d *SegmentedDevice) ReadAt(b []byte, off int64) (int, error) {
	d.lock()
	defer d.unlock()
	read := 0
	for len(b) > 0 && off < d.size {
		start := d.segStart(off)
		room := start + d.segSize - off
		if lim := d.size - off; lim < room {
			room = lim
		}
		chunk := b
		if int64(len(chunk)) > room {
			chunk = b[:room]
		}
		f, ok := d.segs[start]
		if !ok {
			if start < d.base {
				return read, fmt.Errorf("wal: read at %d below truncation point %d", off, d.base)
			}
			// Never-written segment (sparse region): reads as zeros.
			for i := range chunk {
				chunk[i] = 0
			}
			read += len(chunk)
			off += int64(len(chunk))
			b = b[len(chunk):]
			continue
		}
		n, err := f.ReadAt(chunk, off-start)
		if n < len(chunk) && err != nil {
			// Short segment (sparse tail within a live segment): the
			// remainder reads as zeros up to the chunk length, which is
			// already clamped to the logical end of log.
			for i := n; i < len(chunk); i++ {
				chunk[i] = 0
			}
			n = len(chunk)
		}
		read += n
		off += int64(n)
		b = b[n:]
	}
	return read, nil
}

// Sync implements Device: only segments written since the last Sync
// are fsynced. A segment whose fsync fails stays dirty, so a retry
// covers it again.
func (d *SegmentedDevice) Sync() error {
	d.lock()
	defer d.unlock()
	d.stats.syncs.Inc()
	synced := 0
	for start := range d.dirty {
		f, ok := d.segs[start]
		if !ok {
			// Truncated away since it was written; nothing to make
			// durable.
			delete(d.dirty, start)
			continue
		}
		if err := f.Sync(); err != nil {
			return err
		}
		delete(d.dirty, start)
		synced++
	}
	d.stats.segSyncs.Add(uint64(synced))
	if skipped := len(d.segs) - synced; skipped > 0 {
		d.stats.segSyncSkips.Add(uint64(skipped))
	}
	return nil
}

// Size implements Device.
func (d *SegmentedDevice) Size() (int64, error) {
	d.lock()
	defer d.unlock()
	return d.size, nil
}

// Close implements Device.
func (d *SegmentedDevice) Close() error {
	d.lock()
	defer d.unlock()
	var first error
	for _, f := range d.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.segs = make(map[int64]*os.File)
	d.dirty = make(map[int64]struct{})
	return first
}

// TruncateBefore deletes every segment that lies entirely below lsn.
// The caller guarantees no record at or above its recovery horizon
// lives below lsn (see core's truncation-point computation). It
// returns the number of segments removed. On error the offending
// segment has already been dropped from the live map — its file is
// closed (or in an unknown state), so retaining it would surface
// "file already closed" on every later read or sync.
func (d *SegmentedDevice) TruncateBefore(lsn LSN) (int, error) {
	d.lock()
	defer d.unlock()
	removed := 0
	for start, f := range d.segs {
		if start+d.segSize <= int64(lsn) {
			delete(d.segs, start)
			delete(d.dirty, start)
			if err := f.Close(); err != nil {
				return removed, err
			}
			if err := os.Remove(d.segPath(start)); err != nil {
				return removed, err
			}
			removed++
		}
	}
	if int64(lsn) > d.base {
		d.base = d.segStart(int64(lsn))
	}
	return removed, nil
}

// Base returns the lowest retained log offset.
func (d *SegmentedDevice) Base() int64 {
	d.lock()
	defer d.unlock()
	return d.base
}

// Segments returns the number of live segment files.
func (d *SegmentedDevice) Segments() int {
	d.lock()
	defer d.unlock()
	return len(d.segs)
}

// DirtySegments returns the number of segments written since the last
// Sync (test and monitoring surface for the dirty-set invariant).
func (d *SegmentedDevice) DirtySegments() int {
	d.lock()
	defer d.unlock()
	return len(d.dirty)
}

// DeviceStats implements StatsReporter.
func (d *SegmentedDevice) DeviceStats() DeviceStats { return d.stats.DeviceStats() }
