package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hydra/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{
		Type:     RecUpdate,
		TxnID:    42,
		PrevLSN:  1000,
		PageID:   7,
		UndoNext: NilLSN,
		Payload:  []byte("hello, log"),
	}
	buf := make([]byte, EncodedSize(len(r.Payload)))
	n, err := Encode(&r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("Encode wrote %d, want %d", n, len(buf))
	}
	got, length, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if length != n {
		t.Fatalf("Decode length %d, want %d", length, n)
	}
	if got.Type != r.Type || got.TxnID != r.TxnID || got.PrevLSN != r.PrevLSN ||
		got.PageID != r.PageID || got.UndoNext != r.UndoNext || !bytes.Equal(got.Payload, r.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, r)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(typ uint8, txn uint64, prev uint64, pid uint64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		r := Record{Type: RecType(typ), TxnID: txn, PrevLSN: LSN(prev), PageID: pid, Payload: payload}
		buf := make([]byte, EncodedSize(len(payload)))
		if _, err := Encode(&r, buf); err != nil {
			return false
		}
		got, _, err := Decode(buf)
		return err == nil && got.TxnID == txn && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	r := Record{Type: RecCommit, TxnID: 1, PrevLSN: NilLSN, Payload: []byte("xyz")}
	buf := make([]byte, EncodedSize(3))
	Encode(&r, buf)

	if _, _, err := Decode(buf[:10]); !errors.Is(err, ErrTorn) {
		t.Errorf("short buffer: err = %v, want ErrTorn", err)
	}
	if _, _, err := Decode(buf[:len(buf)-1]); !errors.Is(err, ErrTorn) {
		t.Errorf("truncated record: err = %v, want ErrTorn", err)
	}
	bad := append([]byte(nil), buf...)
	bad[20] ^= 0xFF
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: err = %v, want ErrCorrupt", err)
	}
	// Implausible length.
	huge := append([]byte(nil), buf...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := Decode(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("implausible length: err = %v, want ErrCorrupt", err)
	}
}

func TestEncodePayloadTooBig(t *testing.T) {
	r := Record{Type: RecUpdate, Payload: make([]byte, MaxPayload+1)}
	if _, err := Encode(&r, make([]byte, EncodedSize(MaxPayload+1))); !errors.Is(err, ErrPayloadTooBig) {
		t.Fatalf("err = %v, want ErrPayloadTooBig", err)
	}
}

func newTestLog(t *testing.T, kind BufferKind, dev Device) *Log {
	t.Helper()
	l, err := New(dev, Options{Kind: kind, BufferSize: 1 << 20, SyncOnFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendFlushScanAllKinds(t *testing.T) {
	for _, kind := range BufferKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			dev := NewMem()
			l := newTestLog(t, kind, dev)
			var lsns []LSN
			for i := 0; i < 100; i++ {
				lsn, err := l.Append(&Record{
					Type: RecUpdate, TxnID: uint64(i), PrevLSN: NilLSN,
					PageID: uint64(i * 3), Payload: []byte(fmt.Sprintf("payload-%d", i)),
				})
				if err != nil {
					t.Fatal(err)
				}
				lsns = append(lsns, lsn)
			}
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs, err := ScanAll(dev, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 100 {
				t.Fatalf("scanned %d records, want 100", len(recs))
			}
			for i, r := range recs {
				if r.LSN != lsns[i] {
					t.Fatalf("record %d LSN %d, want %d", i, r.LSN, lsns[i])
				}
				if want := fmt.Sprintf("payload-%d", i); string(r.Payload) != want {
					t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
				}
			}
		})
	}
}

// The central correctness property for all insert algorithms: under
// heavy concurrency, every record appears in the log exactly once, at
// its reported LSN, with no gaps or overlaps.
func TestConcurrentInsertExactlyOnce(t *testing.T) {
	for _, kind := range BufferKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			dev := NewMem()
			l := newTestLog(t, kind, dev)
			const workers = 16
			const perWorker = 500
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					src := rng.New(uint64(w))
					for i := 0; i < perWorker; i++ {
						payload := make([]byte, src.IntRange(1, 512))
						src.Bytes(payload)
						// Tag with worker and sequence for verification.
						if _, err := l.Append(&Record{
							Type:  RecUpdate,
							TxnID: uint64(w)<<32 | uint64(i),
							// PrevLSN/PageID carry extra entropy
							PrevLSN: NilLSN,
							PageID:  uint64(len(payload)),
							Payload: payload,
						}); err != nil {
							t.Errorf("append: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs, err := ScanAll(dev, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != workers*perWorker {
				t.Fatalf("scanned %d records, want %d", len(recs), workers*perWorker)
			}
			// Exactly-once and contiguity.
			seen := map[uint64]bool{}
			var pos LSN
			for _, r := range recs {
				if r.LSN != pos {
					t.Fatalf("gap or overlap: record at %d, expected %d", r.LSN, pos)
				}
				pos += LSN(EncodedSize(len(r.Payload)))
				if seen[r.TxnID] {
					t.Fatalf("duplicate record for txn tag %d", r.TxnID)
				}
				seen[r.TxnID] = true
				if uint64(len(r.Payload)) != r.PageID {
					t.Fatalf("payload length corrupted for tag %d", r.TxnID)
				}
			}
		})
	}
}

// Ring wraparound: a tiny buffer forces many wraps and space waits.
func TestRingWraparound(t *testing.T) {
	for _, kind := range BufferKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			dev := NewMem()
			l, err := New(dev, Options{Kind: kind, BufferSize: EncodedSize(MaxPayload), SyncOnFlush: true})
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("w"), 10000)
			const total = 400 // ~4MB through a 1MB+ ring
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < total/4; i++ {
						if _, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(w), Payload: payload}); err != nil {
							t.Errorf("append: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs, err := ScanAll(dev, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != total {
				t.Fatalf("scanned %d, want %d", len(recs), total)
			}
			for _, r := range recs {
				if !bytes.Equal(r.Payload, payload) {
					t.Fatal("payload corrupted across wraparound")
				}
			}
		})
	}
}

func TestWaitFlushedGroupCommit(t *testing.T) {
	dev := NewMem()
	// A slow device forces concurrent committers to pile up behind
	// one IO, which is exactly when group commit must batch them.
	dev.SyncFn = func() { time.Sleep(2 * time.Millisecond) }
	l := newTestLog(t, Consolidated, dev)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(&Record{Type: RecCommit, TxnID: uint64(i)})
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := l.WaitFlushed(lsn); err != nil {
				t.Errorf("wait: %v", err)
				return
			}
			if l.FlushedLSN() <= lsn {
				t.Errorf("WaitFlushed returned before durability: flushed=%d lsn=%d", l.FlushedLSN(), lsn)
			}
		}(i)
	}
	wg.Wait()
	// Group commit must have batched: far fewer syncs than commits.
	if s := dev.Syncs(); s >= n {
		t.Errorf("no batching: %d syncs for %d commits", s, n)
	}
	l.Close()
}

func TestTornTailScan(t *testing.T) {
	dev := NewMem()
	l := newTestLog(t, Serial, dev)
	var last LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(i), Payload: []byte("0123456789")})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	l.Close()
	// Cut mid-way through the last record.
	dev.Truncate(int64(last) + 5)
	recs, err := ScanAll(dev, 0)
	if err != nil {
		t.Fatalf("torn tail produced error: %v", err)
	}
	if len(recs) != 9 {
		t.Fatalf("scanned %d records after torn tail, want 9", len(recs))
	}
}

func TestScanFromMiddle(t *testing.T) {
	dev := NewMem()
	l := newTestLog(t, Serial, dev)
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsn, _ := l.Append(&Record{Type: RecUpdate, TxnID: uint64(i)})
		lsns = append(lsns, lsn)
	}
	l.Close()
	recs, err := ScanAll(dev, lsns[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].TxnID != 5 {
		t.Fatalf("mid-scan got %d records starting at txn %d", len(recs), recs[0].TxnID)
	}
}

func TestClosedLogRejectsInserts(t *testing.T) {
	l := newTestLog(t, Serial, NewMem())
	l.Close()
	if _, err := l.Append(&Record{Type: RecBegin}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestInsertSizeValidation(t *testing.T) {
	l := newTestLog(t, Serial, NewMem())
	defer l.Close()
	if _, err := l.Insert(nil); err == nil {
		t.Error("empty insert accepted")
	}
	if _, err := l.Insert(make([]byte, 1<<20)); err == nil {
		t.Error("oversized insert accepted")
	}
}

func TestFlusherErrorPoisonsLog(t *testing.T) {
	dev := NewMem()
	bang := errors.New("disk on fire")
	dev.FailAfter(100, bang)
	l, err := New(dev, Options{Kind: Serial, BufferSize: 1 << 20, SyncOnFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 200)
	lsn, err := l.Append(&Record{Type: RecUpdate, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitFlushed(lsn); !errors.Is(err, bang) {
		t.Fatalf("WaitFlushed err = %v, want wrapped 'disk on fire'", err)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	dev, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(dev, Options{Kind: Consolidated, BufferSize: 1 << 20, SyncOnFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(i), Payload: []byte("file-backed")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and scan.
	dev2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	recs, err := ScanAll(dev2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("scanned %d, want 50", len(recs))
	}
	// A new log over the same device must resume at the end.
	l2, err := New(dev2, Options{Kind: Serial, BufferSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if lsn, _ := l2.Append(&Record{Type: RecBegin, TxnID: 99}); lsn == 0 {
		t.Fatal("resumed log restarted LSNs at 0")
	}
}

func TestLogResumeAppendsAfterExisting(t *testing.T) {
	dev := NewMem()
	l := newTestLog(t, Serial, dev)
	l.Append(&Record{Type: RecUpdate, TxnID: 1, Payload: []byte("first")})
	l.Close()

	l2 := newTestLog(t, Decoupled, dev)
	l2.Append(&Record{Type: RecUpdate, TxnID: 2, Payload: []byte("second")})
	l2.Close()

	recs, err := ScanAll(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].TxnID != 1 || recs[1].TxnID != 2 {
		t.Fatalf("resume produced %d records: %+v", len(recs), recs)
	}
}

func TestStatsCounting(t *testing.T) {
	dev := NewMem()
	l := newTestLog(t, Consolidated, dev)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Append(&Record{Type: RecUpdate, TxnID: uint64(w), Payload: []byte("p")})
			}
		}(w)
	}
	wg.Wait()
	st := l.StatsSnapshot()
	l.Close()
	if st.Inserts != workers*perWorker {
		t.Fatalf("inserts = %d, want %d", st.Inserts, workers*perWorker)
	}
	// Leaders + joiners must account for every insert.
	if st.MutexAcquires+st.GroupInserts != st.Inserts {
		t.Fatalf("mutex acquires %d + group joins %d != inserts %d",
			st.MutexAcquires, st.GroupInserts, st.Inserts)
	}
}

// Deterministic consolidation-array mechanics: members joining an
// open group get correct displacements; close freezes the size;
// publish releases waiters; the last finish recycles the slot.
func TestConsArrayGroupMechanics(t *testing.T) {
	ca := newConsArray(1)
	s, off, leader := ca.join(100, 1<<20)
	if !leader || off != 0 {
		t.Fatalf("first joiner: leader=%v off=%d", leader, off)
	}
	s2, off2, leader2 := ca.join(50, 1<<20)
	if leader2 || s2 != s || off2 != 100 {
		t.Fatalf("second joiner: leader=%v off=%d", leader2, off2)
	}
	s3, off3, leader3 := ca.join(25, 1<<20)
	if leader3 || off3 != 150 {
		t.Fatalf("third joiner: leader=%v off=%d", leader3, off3)
	}
	_ = s3
	if size := ca.close(s); size != 175 {
		t.Fatalf("group size = %d, want 175", size)
	}
	// After close, a new arrival must not join this group; with a
	// single slot it spins, so verify via the packed word instead.
	if st := caStatus(s.word.Load()); st != caClosed {
		t.Fatalf("slot status = %d, want closed", st)
	}
	ca.publish(s, 4096)
	if got, ok := ca.waitBase(s); !ok || got != 4096 {
		t.Fatalf("published base = %d (ok=%v), want 4096", got, ok)
	}
	ca.finish(s, 175, 100)
	ca.finish(s, 175, 50)
	if st := caStatus(s.word.Load()); st != caClosed {
		t.Fatal("slot recycled before all members finished")
	}
	ca.finish(s, 175, 25)
	if st := caStatus(s.word.Load()); st != caFree {
		t.Fatal("slot not recycled after last member finished")
	}
	// Recycled slot accepts a fresh group.
	_, off4, leader4 := ca.join(10, 1<<20)
	if !leader4 || off4 != 0 {
		t.Fatal("recycled slot did not accept a new leader")
	}
}

// A member whose request would blow the group cap must overflow to
// another slot rather than join.
func TestConsArrayGroupCap(t *testing.T) {
	ca := newConsArray(2)
	s1, _, leader := ca.join(100, 120)
	if !leader {
		t.Fatal("expected leadership of empty array")
	}
	s2, off, leader2 := ca.join(50, 120) // 100+50 > 120: must go elsewhere
	if s2 == s1 {
		t.Fatal("joiner exceeded group cap")
	}
	if !leader2 || off != 0 {
		t.Fatalf("overflow joiner should lead a new group: leader=%v off=%d", leader2, off)
	}
}

func TestFrontierMerging(t *testing.T) {
	f := newFrontier()
	if f.Filled() != 0 {
		t.Fatal("fresh frontier not at 0")
	}
	f.complete(10, 20) // out of order
	if f.Filled() != 0 {
		t.Fatal("frontier advanced past a hole")
	}
	f.complete(0, 10)
	if f.Filled() != 20 {
		t.Fatalf("frontier = %d, want 20 after merge", f.Filled())
	}
	f.complete(30, 40)
	f.complete(20, 25)
	if f.Filled() != 25 {
		t.Fatalf("frontier = %d, want 25", f.Filled())
	}
	f.complete(25, 30)
	if f.Filled() != 40 {
		t.Fatalf("frontier = %d, want 40 after chained merge", f.Filled())
	}
}

func TestFrontierQuickContiguous(t *testing.T) {
	// Property: completing a random permutation of contiguous
	// intervals always ends with the frontier at the total.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		fr := newFrontier()
		n := src.IntRange(1, 50)
		bounds := make([]uint64, n+1)
		for i := 1; i <= n; i++ {
			bounds[i] = bounds[i-1] + uint64(src.IntRange(1, 100))
		}
		for _, i := range src.Perm(n) {
			fr.complete(bounds[i], bounds[i+1])
		}
		return fr.Filled() == bounds[n]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecTypeString(t *testing.T) {
	if RecUpdate.String() != "update" || RecCLR.String() != "clr" {
		t.Fatal("RecType.String mismatch")
	}
	if RecType(200).String() != "rectype(200)" {
		t.Fatal("unknown rectype")
	}
	for _, k := range BufferKinds() {
		if k.String() == "unknown" {
			t.Fatal("named kind stringified as unknown")
		}
	}
	if BufferKind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}
