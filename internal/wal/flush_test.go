package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// newStoppedLog builds a Log with no background flusher, so tests can
// drive flushOnce deterministically (e.g. to pin the exact submission
// shape of a wrap-around flush).
func newStoppedLog(t testing.TB, dev Device, opts Options) *Log {
	t.Helper()
	opts.fill()
	l := &Log{
		opts: opts,
		dev:  dev,
		ring: ringBuf{buf: make([]byte, opts.BufferSize), mask: uint64(opts.BufferSize) - 1},
		fr:   newFrontier(),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	l.vw, _ = dev.(VectorWriter)
	l.dsr, _ = dev.(StatsReporter)
	l.space = sync.NewCond(&l.mu)
	if opts.Kind == Consolidated {
		l.ca = newConsArray(opts.Slots)
	}
	return l
}

// A wrap-around flush region must go down as ONE vectored submission
// (two (offset, buffer) pairs), not two sequential writes.
func TestFlushWrapAroundSingleSubmission(t *testing.T) {
	dev := NewMem()
	l := newStoppedLog(t, dev, Options{Kind: Serial, SyncOnFlush: true})
	ringSize := uint64(l.opts.BufferSize)

	// Park the log frontier near the end of the ring so the next
	// record wraps.
	startAt := ringSize - 64
	l.next = startAt
	l.fr.filled.Store(startAt)
	l.flushed.Store(startAt)
	// The device already "contains" the log prefix.
	if _, err := dev.WriteAt(make([]byte, startAt), 0); err != nil {
		t.Fatal(err)
	}
	preWrites := dev.Writes()

	payload := bytes.Repeat([]byte("w"), 200)
	rec := make([]byte, EncodedSize(len(payload)))
	if _, err := Encode(&Record{Type: RecUpdate, TxnID: 7, Payload: payload}, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := l.insertSerial(rec, nil); err != nil {
		t.Fatal(err)
	}
	<-l.kick // consume: no flusher is running
	if err := l.flushOnce(); err != nil {
		t.Fatal(err)
	}

	if got := dev.Writes() - preWrites; got != 1 {
		t.Fatalf("wrapped flush issued %d write submissions, want 1", got)
	}
	if dev.VecWrites() != 1 {
		t.Fatalf("vec writes = %d, want 1", dev.VecWrites())
	}
	st := l.StatsSnapshot()
	if st.FlushWrites != 1 {
		t.Fatalf("FlushWrites = %d, want 1", st.FlushWrites)
	}
	if st.FlushSyncs != 1 {
		t.Fatalf("FlushSyncs = %d, want 1", st.FlushSyncs)
	}
	// The record must be intact on the device across the wrap.
	recs, err := ScanAll(dev, LSN(startAt))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Payload, payload) {
		t.Fatalf("wrapped record corrupted: %d records", len(recs))
	}
}

// The sequential fallback (device without WriteVec) still issues two
// writes for a wrapped region — the before shape the vectored path is
// measured against.
type plainDev struct{ d *MemDevice }

func (p *plainDev) WriteAt(b []byte, off int64) (int, error) { return p.d.WriteAt(b, off) }
func (p *plainDev) ReadAt(b []byte, off int64) (int, error)  { return p.d.ReadAt(b, off) }
func (p *plainDev) Sync() error                              { return p.d.Sync() }
func (p *plainDev) Size() (int64, error)                     { return p.d.Size() }
func (p *plainDev) Close() error                             { return p.d.Close() }

func TestFlushWrapAroundSequentialFallback(t *testing.T) {
	mem := NewMem()
	dev := &plainDev{d: mem}
	l := newStoppedLog(t, dev, Options{Kind: Serial, SyncOnFlush: true})
	ringSize := uint64(l.opts.BufferSize)
	startAt := ringSize - 64
	l.next = startAt
	l.fr.filled.Store(startAt)
	l.flushed.Store(startAt)
	mem.WriteAt(make([]byte, startAt), 0)
	preWrites := mem.Writes()

	payload := bytes.Repeat([]byte("s"), 200)
	rec := make([]byte, EncodedSize(len(payload)))
	Encode(&Record{Type: RecUpdate, TxnID: 7, Payload: payload}, rec)
	if _, err := l.insertSerial(rec, nil); err != nil {
		t.Fatal(err)
	}
	<-l.kick
	if err := l.flushOnce(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Writes() - preWrites; got != 2 {
		t.Fatalf("sequential wrapped flush issued %d writes, want 2", got)
	}
	if st := l.StatsSnapshot(); st.FlushWrites != 2 {
		t.Fatalf("FlushWrites = %d, want 2", st.FlushWrites)
	}
}

// Regression: a dead flusher must not leave ring-full inserters hung.
// Before the fix, flusher() failed commit waiters but never broadcast
// l.space, so goroutines parked in allocateLocked waited forever on a
// frontier that could no longer advance.
func TestFlusherDeathUnblocksRingFullInserters(t *testing.T) {
	for _, kind := range BufferKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			dev := NewMem()
			bang := errors.New("disk on fire")
			dev.FailAfter(1, bang) // first flush write dies
			l, err := New(dev, Options{Kind: kind, SyncOnFlush: true})
			if err != nil {
				t.Fatal(err)
			}
			// The minimum ring (one max record) fills after ~2 records
			// of half that size; later inserters must block.
			payload := bytes.Repeat([]byte("x"), MaxPayload/2)
			const inserters = 6
			errs := make(chan error, inserters)
			for i := 0; i < inserters; i++ {
				go func(i int) {
					_, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(i), Payload: payload})
					errs <- err
				}(i)
			}
			deadline := time.After(10 * time.Second)
			sawErr := 0
			for i := 0; i < inserters; i++ {
				select {
				case err := <-errs:
					if err != nil {
						sawErr++
						if !errors.Is(err, bang) && !errors.Is(err, ErrClosed) {
							t.Fatalf("unexpected insert error: %v", err)
						}
					}
				case <-deadline:
					t.Fatalf("inserters still hung %d/%d after flusher death", inserters-i, inserters)
				}
			}
			// The minimum ring (512KiB) fits at most 3 of the 6
			// ~128KiB records before the dead flusher's frontier, so
			// at least 3 inserters must have been refused or unblocked
			// with the flusher's error rather than hanging.
			if sawErr < inserters-3 {
				t.Fatalf("only %d/%d inserters saw the poisoned log", sawErr, inserters)
			}
			// New inserts are refused outright on a poisoned log.
			if _, err := l.Append(&Record{Type: RecUpdate, TxnID: 99}); !errors.Is(err, bang) {
				t.Fatalf("insert on poisoned log: %v, want %v", err, bang)
			}
			// Commit waiters fail rather than hang.
			if err := l.WaitFlushed(0); !errors.Is(err, bang) {
				t.Fatalf("WaitFlushed on poisoned log: %v", err)
			}
			if err := l.Close(); !errors.Is(err, bang) {
				t.Fatalf("Close on poisoned log: %v", err)
			}
		})
	}
}

// Satellite: ReadAt must clamp each chunk to the logical end of log
// instead of zero-padding to the full in-segment length.
func TestSegmentedReadAtClampsToLogicalEnd(t *testing.T) {
	d := newSegDev(t, 100)
	if _, err := d.WriteAt(bytes.Repeat([]byte("a"), 50), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 80)
	n, err := d.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("read past logical end: n = %d, want 50", n)
	}
	// Entirely past the end: zero bytes, not a segment's worth of
	// zeros.
	if n, _ := d.ReadAt(buf, 50); n != 0 {
		t.Fatalf("read at logical end returned %d bytes", n)
	}
	if n, _ := d.ReadAt(buf, 70); n != 0 {
		t.Fatalf("read beyond logical end returned %d bytes", n)
	}
	// A sparse hole inside the log still reads as zeros up to size.
	if _, err := d.WriteAt([]byte("zzzzzzzzzz"), 290); err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, 400)
	n, err = d.ReadAt(whole, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("whole read = %d, want 300 (logical size)", n)
	}
	if whole[40] != 'a' || whole[60] != 0 || whole[150] != 0 || whole[295] != 'z' {
		t.Fatal("sparse-region content mismatch")
	}
}

// Satellite: a failed os.Remove during TruncateBefore must not leave
// the closed *os.File in the live segment map, where later operations
// would hit "file already closed".
func TestTruncateBeforeRemoveFailureDropsSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	d, err := OpenSegmented(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.WriteAt(bytes.Repeat([]byte("y"), 300), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sabotage segment 0's path: replace the file with a non-empty
	// directory so os.Remove fails after the file handle is closed.
	seg0 := d.segPath(0)
	if err := os.Remove(seg0); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(seg0, "pin"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TruncateBefore(250); err == nil {
		t.Fatal("TruncateBefore succeeded despite unremovable segment")
	}
	// The failed segment must be gone from the live map: a retry (and
	// any sync) must not see its closed file. Segments the loop had
	// not reached yet may legitimately remain for the retry.
	d.lock()
	_, retained := d.segs[0]
	d.unlock()
	if retained {
		t.Fatal("closed segment 0 still in live map after failed truncation")
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("sync after failed truncation: %v", err)
	}
	if _, err := d.TruncateBefore(250); err != nil {
		t.Fatalf("truncation retry hit retained state: %v", err)
	}
	// The device keeps working for fresh writes and reads.
	if _, err := d.WriteAt([]byte("new"), 300); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

// A vector spanning several segments becomes one submission per
// touched segment file.
func TestSegmentedWriteVecPerSegmentSubmissions(t *testing.T) {
	d := newSegDev(t, 100)
	// Two contiguous buffers covering [30, 280): segments 0, 1, 2.
	b1 := bytes.Repeat([]byte("A"), 120)
	b2 := bytes.Repeat([]byte("B"), 130)
	n, err := d.WriteVec([]int64{30, 150}, [][]byte{b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 250 {
		t.Fatalf("WriteVec wrote %d, want 250", n)
	}
	st := d.DeviceStats()
	if st.VecWrites != 1 {
		t.Fatalf("vec writes = %d, want 1", st.VecWrites)
	}
	if st.Writes != 3 {
		t.Fatalf("write submissions = %d, want 3 (one per touched segment)", st.Writes)
	}
	if d.DirtySegments() != 3 {
		t.Fatalf("dirty segments = %d, want 3", d.DirtySegments())
	}
	if sz, _ := d.Size(); sz != 280 {
		t.Fatalf("size = %d, want 280", sz)
	}
	back := make([]byte, 250)
	if n, err := d.ReadAt(back, 30); n != 250 || err != nil {
		t.Fatalf("read back %d, %v", n, err)
	}
	want := append(append([]byte{}, b1...), b2...)
	if !bytes.Equal(back, want) {
		t.Fatal("vectored write content mismatch")
	}
	// Non-contiguous pairs in one segment still land correctly.
	if _, err := d.WriteVec([]int64{300, 350}, [][]byte{[]byte("xx"), []byte("yy")}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	d.ReadAt(got, 350)
	if string(got) != "yy" {
		t.Fatalf("gap vector content = %q", got)
	}
}

// Sync must fsync only segments written since the last sync.
func TestSegmentedDirtyOnlySync(t *testing.T) {
	d := newSegDev(t, 100)
	if _, err := d.WriteAt(bytes.Repeat([]byte("d"), 1000), 0); err != nil { // 10 segments
		t.Fatal(err)
	}
	if d.DirtySegments() != 10 {
		t.Fatalf("dirty = %d, want 10", d.DirtySegments())
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	st := d.DeviceStats()
	if st.SegSyncs != 10 {
		t.Fatalf("first sync fsynced %d segments, want 10", st.SegSyncs)
	}
	if d.DirtySegments() != 0 {
		t.Fatalf("dirty after sync = %d", d.DirtySegments())
	}
	// Touch one segment: the next sync must fsync exactly one file and
	// skip the other nine.
	if _, err := d.WriteAt([]byte("!"), 505); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	st = d.DeviceStats()
	if st.SegSyncs != 11 {
		t.Fatalf("dirty-only sync fsynced %d total, want 11", st.SegSyncs)
	}
	if st.SegSyncSkips != 9 {
		t.Fatalf("seg sync skips = %d, want 9", st.SegSyncSkips)
	}
	// A clean sync fsyncs nothing.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if st = d.DeviceStats(); st.SegSyncs != 11 {
		t.Fatalf("clean sync fsynced segments: %d", st.SegSyncs)
	}
}

// End-to-end: a Log over a SegmentedDevice takes the vectored path,
// and per-flush submissions stay at one vectored call per flush.
func TestLogOverSegmentedUsesVectoredPath(t *testing.T) {
	d := newSegDev(t, 4096)
	l, err := New(d, Options{Kind: Consolidated, BufferSize: 1 << 20, SyncOnFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		lsn, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(i), Payload: bytes.Repeat([]byte("v"), 100)})
		if err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := l.WaitFlushed(lsn); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.StatsSnapshot()
	if st.Dev.VecWrites == 0 {
		t.Fatal("segmented device never saw a vectored submission")
	}
	if st.FlushWrites != st.Dev.VecWrites {
		t.Fatalf("flusher submissions %d != device WriteVec calls %d (flusher bypassed the vectored path)",
			st.FlushWrites, st.Dev.VecWrites)
	}
	if st.Dev.SegSyncs == 0 {
		t.Fatal("no segment fsyncs recorded")
	}
	recs, err := ScanAll(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 300 {
		t.Fatalf("scanned %d records, want 300", len(recs))
	}
}

// Satellite: -race stress over the full new path — Consolidated
// inserts through vectored flushes into a SegmentedDevice while
// TruncateBefore rotates old segments out underneath.
func TestSegmentedVectoredTruncateStress(t *testing.T) {
	d := newSegDev(t, 8192)
	l, err := New(d, Options{Kind: Consolidated, BufferSize: 1 << 20, SyncOnFlush: true, FlushInterval: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 400
	var mu sync.Mutex
	lsns := make(map[LSN]uint64, workers*perWorker)

	var wg, twg sync.WaitGroup
	stopTrunc := make(chan struct{})
	// Truncator: rotate segments that lie entirely below the durable
	// frontier, keeping a two-segment safety margin.
	twg.Add(1)
	go func() {
		defer twg.Done()
		for {
			select {
			case <-stopTrunc:
				return
			case <-time.After(200 * time.Microsecond):
			}
			horizon := int64(l.FlushedLSN()) - 2*8192
			if horizon > 0 {
				if _, err := d.TruncateBefore(LSN(horizon)); err != nil {
					t.Errorf("truncate: %v", err)
					return
				}
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + w)}, 64+w*16)
			for i := 0; i < perWorker; i++ {
				lsn, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(w)<<32 | uint64(i), Payload: payload})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				lsns[lsn] = uint64(w)<<32 | uint64(i)
				mu.Unlock()
				if i%64 == 0 {
					if err := l.WaitFlushed(lsn); err != nil {
						t.Errorf("wait: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopTrunc)
	twg.Wait()
	if t.Failed() {
		return
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Scan from the first whole record at or above the truncation
	// base; everything from there must be contiguous and intact.
	base := d.Base()
	var starts []LSN
	for lsn := range lsns {
		starts = append(starts, lsn)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	var from LSN
	for _, lsn := range starts {
		if int64(lsn) >= base {
			from = lsn
			break
		}
	}
	recs, err := ScanAll(d, from)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records survived")
	}
	pos := from
	for _, r := range recs {
		if r.LSN != pos {
			t.Fatalf("gap at %d, expected %d", r.LSN, pos)
		}
		if want, ok := lsns[r.LSN]; !ok || r.TxnID != want {
			t.Fatalf("record at %d carries tag %d, want %d", r.LSN, r.TxnID, want)
		}
		pos += LSN(EncodedSize(len(r.Payload)))
	}
	st := l.StatsSnapshot()
	if st.Dev.VecWrites == 0 {
		t.Fatal("stress never exercised the vectored path")
	}
	t.Logf("flushes=%d vec_writes=%d seg_syncs=%d seg_sync_skips=%d truncated_to=%d scanned=%d",
		st.Flushes, st.Dev.VecWrites, st.Dev.SegSyncs, st.Dev.SegSyncSkips, base, len(recs))
}

// The flush daemon coalesces pending kicks: a burst of inserts while
// a flush is in flight must not translate into one no-op flush per
// kick afterwards.
func TestFlusherCoalescesKicks(t *testing.T) {
	dev := NewMem()
	l, err := New(dev, Options{Kind: Serial, SyncOnFlush: true, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last LSN
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(&Record{Type: RecUpdate, TxnID: uint64(i), Payload: []byte("k")})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if err := l.WaitFlushed(last); err != nil {
		t.Fatal(err)
	}
	st := l.StatsSnapshot()
	if st.Flushes == 0 || st.Flushes > 100 {
		t.Fatalf("flushes = %d for 100 inserts", st.Flushes)
	}
	// Every flush submission carried data: submissions == flushes.
	if st.FlushWrites != st.Flushes {
		t.Fatalf("flush writes %d != flushes %d", st.FlushWrites, st.Flushes)
	}
}
