package cmpmodel

import (
	"math"
	"testing"
)

func TestBasicSanity(t *testing.T) {
	for _, w := range []Workload{OLTP(), DSS()} {
		r := Evaluate(DefaultMachine(), w)
		if r.TPS <= 0 || math.IsNaN(r.TPS) || math.IsInf(r.TPS, 0) {
			t.Fatalf("%s: TPS = %v", w.Name, r.TPS)
		}
		if r.CPI < w.BaseCPI {
			t.Fatalf("%s: CPI %v below base %v", w.Name, r.CPI, w.BaseCPI)
		}
		if r.L2Miss < w.MissFloor || r.L2Miss > 1 {
			t.Fatalf("%s: L2 miss %v out of range", w.Name, r.L2Miss)
		}
	}
}

// Claim C1: speedup is sublinear and eventually saturates — "current
// parallelism methods are of bounded utility as the number of
// processors per chip increases exponentially."
func TestC1BoundedSpeedup(t *testing.T) {
	m := DefaultMachine()
	cores := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	for _, w := range []Workload{OLTP(), DSS()} {
		sp := Speedup(m, w, cores)
		// Sublinear everywhere past 1 core.
		for i, n := range cores {
			if n > 1 && sp[i] >= float64(n) {
				t.Fatalf("%s: superlinear speedup %v at %d cores", w.Name, sp[i], n)
			}
		}
		// Diminishing returns: the last doubling gains far less than
		// the first.
		gainFirst := sp[1] / sp[0]
		gainLast := sp[len(sp)-1] / sp[len(sp)-2]
		if gainLast >= gainFirst {
			t.Fatalf("%s: no diminishing returns (first %.2fx, last %.2fx)", w.Name, gainFirst, gainLast)
		}
		// Bounded utility: at 1024 cores, efficiency is far below 1.
		if eff := sp[len(sp)-1] / 1024; eff > 0.5 {
			t.Fatalf("%s: 1024-core efficiency %.2f; model shows no saturation", w.Name, eff)
		}
	}
}

// Claim C2a: growing a shared cache past the working set hurts —
// there exists an interior throughput optimum in cache size.
func TestC2CacheSizeHasInteriorOptimum(t *testing.T) {
	m := DefaultMachine()
	m.Cores = 16
	sizes := []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	res := SweepCache(m, OLTP(), sizes)
	best := 0
	for i, r := range res {
		if r.TPS > res[best].TPS {
			best = i
		}
	}
	if best == 0 {
		t.Fatal("smallest cache is best; capacity misses not modelled")
	}
	if best == len(sizes)-1 {
		t.Fatal("largest cache is best; wire-delay detriment not modelled")
	}
	// And the fall past the optimum is material.
	if res[len(res)-1].TPS >= res[best].TPS*0.98 {
		t.Fatalf("no meaningful detriment past optimum: best %.0f, largest %.0f",
			res[best].TPS, res[len(res)-1].TPS)
	}
}

// Claim C2b: for write-heavy OLTP at high core counts, aggressive
// sharing is not free — a shared cache pays latency that private
// slices avoid, while private slices pay coherence. The model must
// show a real tradeoff (neither dominates everywhere).
func TestC2SharingTradeoff(t *testing.T) {
	m := DefaultMachine()
	m.Cores = 64
	m.L2MB = 32
	shared, private := m, m
	shared.SharedL2 = true
	private.SharedL2 = false

	oltpShared := Evaluate(shared, OLTP()).TPS
	oltpPrivate := Evaluate(private, OLTP()).TPS

	// At one core the two organizations must coincide (modulo the
	// sharing terms, which vanish).
	one := m
	one.Cores = 1
	oneShared, onePrivate := one, one
	oneShared.SharedL2 = true
	onePrivate.SharedL2 = false
	a, b := Evaluate(oneShared, OLTP()).TPS, Evaluate(onePrivate, OLTP()).TPS
	if math.Abs(a-b)/b > 0.2 {
		t.Fatalf("single-core organizations diverge: %v vs %v", a, b)
	}
	// At 64 cores they must differ measurably — sharing is a real
	// design decision, not a no-op.
	if diff := math.Abs(oltpShared-oltpPrivate) / oltpPrivate; diff < 0.02 {
		t.Fatalf("sharing indistinguishable at 64 cores (%.1f%% diff)", diff*100)
	}
}

// DSS must be more bandwidth-hungry than OLTP in the model.
func TestDSSBandwidthBound(t *testing.T) {
	m := DefaultMachine()
	m.Cores = 64
	dss := Evaluate(m, DSS())
	if !dss.BandwidthBound {
		t.Fatalf("64-core DSS not bandwidth bound (offchip %.1f GB/s vs %v)", dss.OffChipGBs, m.MemBandwidthGBs)
	}
}

// More cache must never increase the miss ratio.
func TestMissMonotoneInCache(t *testing.T) {
	m := DefaultMachine()
	m.Cores = 8
	prev := math.Inf(1)
	for _, s := range []float64{1, 2, 4, 8, 16, 32, 64} {
		m.L2MB = s
		r := Evaluate(m, OLTP())
		if r.L2Miss > prev+1e-12 {
			t.Fatalf("miss ratio rose with cache size at %v MB", s)
		}
		prev = r.L2Miss
	}
}

// L2 hit latency must grow with capacity (the wire-delay mechanism
// behind claim C2).
func TestLatencyGrowsWithCache(t *testing.T) {
	m := DefaultMachine()
	prev := 0.0
	for _, s := range []float64{1, 4, 16, 64} {
		m.L2MB = s
		r := Evaluate(m, OLTP())
		if r.L2HitLatency <= prev {
			t.Fatalf("L2 latency not increasing at %v MB", s)
		}
		prev = r.L2HitLatency
	}
}

func TestSweepLengths(t *testing.T) {
	m := DefaultMachine()
	if got := len(SweepCores(m, OLTP(), []int{1, 2, 3})); got != 3 {
		t.Fatal("SweepCores length")
	}
	if got := len(SweepCache(m, OLTP(), []float64{1, 2})); got != 2 {
		t.Fatal("SweepCache length")
	}
}
