// Package cmpmodel is an analytical performance model of database
// workloads on chip multiprocessors, in the tradition of the scaling
// studies the paper builds its argument on ("a careful analysis of
// database performance scaling trends on future chip multiprocessors
// demonstrates that current parallelism methods are of bounded
// utility" — claim C1 — and "increasing on-chip cache size or
// aggressively sharing data among processors is often detrimental" —
// claim C2).
//
// Hardware sweeps over core counts and cache hierarchies cannot be
// run on a test machine, so this package substitutes a first-order
// queueing-free model: per-core CPI built from a three-level memory
// hierarchy (fixed-latency L1, capacity- and sharing-sensitive L2,
// fixed-latency DRAM) with an off-chip bandwidth ceiling. Miss rates
// follow the standard power-law capacity curve with a compulsory +
// coherence floor; shared caches pay a NUCA-style latency that grows
// with capacity and with the number of sharers, and shared data pays
// coherence misses that grow with the writer count. The model's
// absolute numbers are synthetic; its *shapes* — plateaus, optima,
// crossovers — are the reproduction target.
package cmpmodel

import "math"

// Machine describes a chip multiprocessor configuration.
type Machine struct {
	// Cores is the number of hardware contexts.
	Cores int
	// L2MB is the total on-chip L2 capacity in MiB.
	L2MB float64
	// SharedL2 selects one shared L2 (true) or private per-core
	// slices (false).
	SharedL2 bool
	// ClockGHz is the core clock.
	ClockGHz float64
	// MemLatency is DRAM access latency in cycles.
	MemLatency float64
	// MemBandwidthGBs is the off-chip pin bandwidth ceiling.
	MemBandwidthGBs float64
	// L1Latency, L2BaseLatency are hit latencies in cycles.
	L1Latency, L2BaseLatency float64
	// L2LatencyPerSqrtMB models NUCA wire delay: hit latency grows
	// with the square root of the capacity a core actually reaches.
	L2LatencyPerSqrtMB float64
	// InterconnectHop is the extra latency per unit of sharing degree
	// when many cores share one cache.
	InterconnectHop float64
}

// DefaultMachine returns a plausible 2011-era CMP baseline.
func DefaultMachine() Machine {
	return Machine{
		Cores:              8,
		L2MB:               8,
		SharedL2:           true,
		ClockGHz:           2.0,
		MemLatency:         400,
		MemBandwidthGBs:    25.6,
		L1Latency:          3,
		L2BaseLatency:      12,
		L2LatencyPerSqrtMB: 4.0,
		InterconnectHop:    1.5,
	}
}

// Workload is an abstract instruction/memory profile.
type Workload struct {
	Name string
	// InstrPerTxn is the path length of one transaction/query unit.
	InstrPerTxn float64
	// BaseCPI is the no-miss cycles per instruction.
	BaseCPI float64
	// MemRefsPerInstr is the fraction of instructions touching memory.
	MemRefsPerInstr float64
	// L1MissRate is the (capacity-insensitive) L1 miss ratio.
	L1MissRate float64
	// L2MissAt1MB is the L2 local miss ratio with 1 MiB per core.
	L2MissAt1MB float64
	// Alpha is the power-law exponent of the capacity miss curve.
	Alpha float64
	// MissFloor is the compulsory miss ratio no capacity removes.
	MissFloor float64
	// SharedWriteFrac is the fraction of memory references that are
	// writes to data shared between cores (drives coherence misses).
	SharedWriteFrac float64
	// MLP is the memory-level parallelism: how many outstanding
	// misses overlap. Streaming scans prefetch deeply (high MLP);
	// OLTP's dependent pointer chases barely overlap (MLP near 1).
	MLP float64
	// LineBytes is the coherence/memory transfer granularity.
	LineBytes float64
}

// OLTP returns a transaction-processing profile: short transactions,
// pointer chasing (poor locality), significant shared writes.
func OLTP() Workload {
	return Workload{
		Name:            "oltp",
		InstrPerTxn:     200_000,
		BaseCPI:         1.2,
		MemRefsPerInstr: 0.35,
		L1MissRate:      0.055,
		L2MissAt1MB:     0.35,
		Alpha:           0.60,
		MissFloor:       0.06,
		SharedWriteFrac: 0.07,
		MLP:             1.3,
		LineBytes:       64,
	}
}

// DSS returns a decision-support profile: long scans, streaming
// access (bandwidth hungry, little sharing).
func DSS() Workload {
	return Workload{
		Name:            "dss",
		InstrPerTxn:     50_000_000,
		BaseCPI:         0.8,
		MemRefsPerInstr: 0.30,
		L1MissRate:      0.125,
		L2MissAt1MB:     0.80,
		Alpha:           0.25,
		MissFloor:       0.55,
		SharedWriteFrac: 0.005,
		MLP:             8,
		LineBytes:       64,
	}
}

// Result is the model's output for one configuration.
type Result struct {
	// TPS is transactions (work units) per second for the whole chip.
	TPS float64
	// CPI is the effective per-core cycles per instruction.
	CPI float64
	// AMAT is the average memory access time in cycles.
	AMAT float64
	// L2Miss is the effective L2 miss ratio (capacity + coherence).
	L2Miss float64
	// L2HitLatency is the modelled L2 hit latency in cycles.
	L2HitLatency float64
	// OffChipGBs is the off-chip traffic the cores would generate
	// unconstrained.
	OffChipGBs float64
	// BandwidthBound reports whether the pin ceiling, not the cores,
	// set the throughput.
	BandwidthBound bool
}

// Evaluate runs the model for one machine and workload.
func Evaluate(m Machine, w Workload) Result {
	cores := float64(m.Cores)

	// Capacity each core effectively reaches, and the latency to it.
	var perCoreMB, l2Lat float64
	var sharers float64
	if m.SharedL2 {
		// All cores reach the whole cache but pay wire + sharing cost.
		perCoreMB = m.L2MB / coreFootprint(cores, w)
		l2Lat = m.L2BaseLatency + m.L2LatencyPerSqrtMB*math.Sqrt(m.L2MB) +
			m.InterconnectHop*math.Sqrt(cores-1)
		sharers = cores
	} else {
		perCoreMB = (m.L2MB / cores) / coreFootprint(1, w)
		l2Lat = m.L2BaseLatency + m.L2LatencyPerSqrtMB*math.Sqrt(m.L2MB/cores)
		sharers = 1 // private caches: sharing cost moves to coherence below
	}

	// Power-law capacity misses with a compulsory floor.
	capMiss := w.L2MissAt1MB * math.Pow(perCoreMB, -w.Alpha)
	if capMiss > 1 {
		capMiss = 1
	}
	// Coherence misses: shared writes invalidate other cores' copies.
	// Private caches pay full invalidation cost; a shared cache turns
	// most of them into on-chip hits.
	cohFactor := 1.0
	if m.SharedL2 {
		cohFactor = 0.25
	}
	cohMiss := w.SharedWriteFrac * (1 - 1/maxf(cores, 1)) * cohFactor * float64(boolTo01(cores > 1))
	l2Miss := clamp01(w.MissFloor + capMiss + cohMiss)
	_ = sharers

	mlp := maxf(w.MLP, 1)
	amat := m.L1Latency + w.L1MissRate*(l2Lat+l2Miss*m.MemLatency/mlp)
	cpi := w.BaseCPI + w.MemRefsPerInstr*(amat-1)

	clockHz := m.ClockGHz * 1e9
	perCoreIPS := clockHz / cpi
	cpuTPS := cores * perCoreIPS / w.InstrPerTxn

	// Off-chip traffic the cores would generate at cpuTPS.
	missesPerTxn := w.InstrPerTxn * w.MemRefsPerInstr * w.L1MissRate * l2Miss
	bytesPerTxn := missesPerTxn * w.LineBytes
	offChip := cpuTPS * bytesPerTxn / 1e9
	bwTPS := m.MemBandwidthGBs * 1e9 / bytesPerTxn

	res := Result{
		CPI:          cpi,
		AMAT:         amat,
		L2Miss:       l2Miss,
		L2HitLatency: l2Lat,
		OffChipGBs:   offChip,
	}
	if bwTPS < cpuTPS {
		res.TPS = bwTPS
		res.BandwidthBound = true
	} else {
		res.TPS = cpuTPS
	}
	return res
}

// coreFootprint models destructive interference in a shared cache:
// n cores sharing one cache each effectively reach capacity/f(n),
// where f grows sublinearly because of constructive sharing of hot
// structures (indexes, code). OLTP shares more than DSS.
func coreFootprint(cores float64, w Workload) float64 {
	if cores <= 1 {
		return 1
	}
	constructive := 0.35 * (1 - w.SharedWriteFrac*4) // shared read-only structures
	if constructive < 0 {
		constructive = 0
	}
	return math.Pow(cores, 1-constructive)
}

// SweepCores evaluates throughput across core counts at fixed total
// cache (claim C1's x-axis).
func SweepCores(base Machine, w Workload, coreCounts []int) []Result {
	out := make([]Result, 0, len(coreCounts))
	for _, n := range coreCounts {
		m := base
		m.Cores = n
		out = append(out, Evaluate(m, w))
	}
	return out
}

// SweepCache evaluates throughput across L2 capacities at fixed cores
// (claim C2's x-axis).
func SweepCache(base Machine, w Workload, sizesMB []float64) []Result {
	out := make([]Result, 0, len(sizesMB))
	for _, s := range sizesMB {
		m := base
		m.L2MB = s
		out = append(out, Evaluate(m, w))
	}
	return out
}

// Speedup returns TPS(n)/TPS(1) for each core count, the scalability
// curve the paper's claim C1 is about.
func Speedup(base Machine, w Workload, coreCounts []int) []float64 {
	one := base
	one.Cores = 1
	t1 := Evaluate(one, w).TPS
	out := make([]float64, 0, len(coreCounts))
	for _, r := range SweepCores(base, w, coreCounts) {
		out = append(out, r.TPS/t1)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func boolTo01(b bool) int {
	if b {
		return 1
	}
	return 0
}
