// Package hist provides a fixed-footprint latency histogram with
// power-of-two buckets, used by the experiment harness to report
// tail latencies (the paper's contention pathologies surface as tail
// inflation long before they dent mean throughput).
package hist

import (
	"fmt"
	"math/bits"
	"time"
)

// NumBuckets is the fixed bucket count: bucket i holds values in
// [2^i, 2^(i+1)) nanoseconds; bucket 0 holds [0, 2). 64 buckets cover
// any int64 duration.
const NumBuckets = 64

const numBuckets = NumBuckets

// H is a latency histogram. Not safe for concurrent use; keep one per
// worker and Merge.
type H struct {
	counts [numBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
}

// Observe records one duration.
func (h *H) Observe(d time.Duration) {
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func bucketOf(v uint64) int {
	if v < 2 {
		return 0
	}
	return 63 - bits.LeadingZeros64(v)
}

// FromRaw reconstructs a histogram from externally-maintained bucket
// counts plus the value sum and max (in nanoseconds). The concurrent
// histogram in internal/obs keeps its buckets in per-stripe atomics
// and merges them into an H through this constructor, so both sides
// share one quantile and formatting path.
func FromRaw(counts *[NumBuckets]uint64, sum, max uint64) H {
	h := H{sum: sum, max: max}
	for i, c := range counts {
		h.counts[i] = c
		h.total += c
	}
	return h
}

// Bucket returns the count in bucket i (observations in
// [2^i, 2^(i+1)) ns; bucket 0 also holds 0 and 1 ns).
func (h *H) Bucket(i int) uint64 { return h.counts[i] }

// BucketUpper returns the exclusive upper edge of bucket i.
func BucketUpper(i int) time.Duration {
	if i >= 63 {
		return time.Duration(^uint64(0) >> 1)
	}
	return time.Duration(uint64(1) << (i + 1))
}

// Sum returns the sum of all observed durations.
func (h *H) Sum() time.Duration { return time.Duration(h.sum) }

// Merge folds other into h.
func (h *H) Merge(other *H) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of observations.
func (h *H) Count() uint64 { return h.total }

// Mean returns the average observed duration.
func (h *H) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Max returns the largest observed duration.
func (h *H) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1),
// accurate to the bucket width (a factor of two).
func (h *H) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			// Upper edge of the bucket, clamped to the exact max so
			// p99 never prints above it (both are upper bounds on the
			// true quantile; the tighter one wins).
			ub := BucketUpper(i)
			if ub > h.Max() {
				return h.Max()
			}
			return ub
		}
	}
	return h.Max()
}

// String summarizes the distribution as the p50/p90/p99/max line the
// harness tables and hydra-top both print.
func (h *H) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		h.total, h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.90).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}
