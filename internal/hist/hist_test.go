package hist

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	var h H
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestBasicStats(t *testing.T) {
	var h H
	for _, d := range []time.Duration{100, 200, 300, 400} {
		h.Observe(d * time.Microsecond)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 250*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 400*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestQuantileBounds(t *testing.T) {
	var h H
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	// The p50 upper bound must be >= true median and within 2x.
	p50 := h.Quantile(0.5)
	trueMedian := 500 * time.Microsecond
	if p50 < trueMedian || p50 > 2*trueMedian {
		t.Fatalf("p50 = %v, true median %v", p50, trueMedian)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	// Quantiles are monotone.
	if h.Quantile(0.5) > h.Quantile(0.9) || h.Quantile(0.9) > h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
}

func TestMerge(t *testing.T) {
	var a, b H
	for i := 0; i < 100; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	if p99 := a.Quantile(0.99); p99 < time.Millisecond {
		t.Fatalf("merged p99 = %v", p99)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	var h H
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative duration not clamped")
	}
}

func TestBucketOfProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := bucketOf(v)
		if b < 0 || b >= numBuckets {
			return false
		}
		if v >= 2 {
			// v must lie in [2^b, 2^(b+1)).
			lo := uint64(1) << b
			if v < lo {
				return false
			}
			if b < 63 && v >= lo<<1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringContainsStats(t *testing.T) {
	var h H
	h.Observe(time.Millisecond)
	s := h.String()
	if len(s) == 0 || s[0] != 'n' {
		t.Fatalf("String() = %q", s)
	}
	// hydra-top and the harness share this one formatting path; the
	// quantile labels are part of the contract.
	for _, want := range []string{"n=1", "p50=", "p90=", "p99=", "max="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestFromRawRoundTrip(t *testing.T) {
	var h H
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	var counts [NumBuckets]uint64
	for i := 0; i < NumBuckets; i++ {
		counts[i] = h.Bucket(i)
	}
	got := FromRaw(&counts, uint64(h.Sum()), uint64(h.Max()))
	if got.Count() != h.Count() || got.Sum() != h.Sum() || got.Max() != h.Max() {
		t.Fatalf("FromRaw lost totals: got n=%d sum=%v max=%v", got.Count(), got.Sum(), got.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Fatalf("Quantile(%v): got %v want %v", q, got.Quantile(q), h.Quantile(q))
		}
	}
}

func TestBucketUpperEdges(t *testing.T) {
	if BucketUpper(0) != 2 {
		t.Fatalf("BucketUpper(0) = %v", BucketUpper(0))
	}
	if BucketUpper(10) != 2048 {
		t.Fatalf("BucketUpper(10) = %v", BucketUpper(10))
	}
	if BucketUpper(63) != time.Duration(^uint64(0)>>1) {
		t.Fatalf("BucketUpper(63) = %v", BucketUpper(63))
	}
	// An observed value always falls strictly below its bucket's
	// upper edge.
	var h H
	v := 1500 * time.Nanosecond
	h.Observe(v)
	for i := 0; i < NumBuckets; i++ {
		if h.Bucket(i) == 1 {
			if BucketUpper(i) <= v {
				t.Fatalf("value %v not below BucketUpper(%d)=%v", v, i, BucketUpper(i))
			}
			return
		}
	}
	t.Fatal("observation not found in any bucket")
}
