package harness

import (
	"fmt"
	"runtime"

	"hydra/internal/logsim"
	"hydra/internal/wal"
)

// E2 reproduces the Aether log-scalability result (claim C6): a
// serial log buffer collapses under concurrent insertion, while
// decoupling the buffer fill from the mutex and consolidating
// concurrent requests keeps aggregate insert bandwidth up.
func E2(s Scale) (*Report, error) {
	recordSize := 120
	rep := &Report{
		ID:    "E2",
		Title: "log insert scalability: serial vs decoupled vs consolidated (Aether)",
		Claim: "C6: parallelism needs to be extracted from seemingly serial operations such as logging",
	}
	tab := &Table{
		Title:   fmt.Sprintf("log inserts/s, %dB payloads (in-memory device)", recordSize),
		Columns: []string{"threads", "serial", "decoupled", "consolidated", "cons. mutex-acq/insert"},
	}
	for _, threads := range s.Threads() {
		var cells []string
		cells = append(cells, fmt.Sprintf("%d", threads))
		var consRatio float64
		for _, kind := range wal.BufferKinds() {
			log, err := wal.New(wal.NewMem(), wal.Options{
				Kind:        kind,
				BufferSize:  16 << 20,
				SyncOnFlush: false, // isolate the insert path, as Aether's insert microbenchmark does
			})
			if err != nil {
				return nil, err
			}
			payload := make([]byte, recordSize)
			ops, dur, err := RunWorkers(threads, s.Window(), func(w int) (uint64, error) {
				var n uint64
				for i := 0; i < 64; i++ {
					if _, err := log.Append(&wal.Record{
						Type: wal.RecUpdate, TxnID: uint64(w), Payload: payload,
					}); err != nil {
						return n, err
					}
					n++
				}
				return n, nil
			})
			if err != nil {
				return nil, fmt.Errorf("E2 %v: %w", kind, err)
			}
			st := log.StatsSnapshot()
			if kind == wal.Consolidated && st.Inserts > 0 {
				consRatio = float64(st.MutexAcquires) / float64(st.Inserts)
			}
			if err := log.Close(); err != nil {
				return nil, err
			}
			cells = append(cells, F(float64(ops)/dur.Seconds()))
		}
		cells = append(cells, fmt.Sprintf("%.3f", consRatio))
		tab.AddRow(cells...)
	}
	rep.Tab = append(rep.Tab, tab)

	// The contention phenomena need genuinely parallel hardware; on a
	// small host the measured table above flattens. The discrete-event
	// simulator regenerates the multi-core shape deterministically.
	sim := &Table{
		Title:   fmt.Sprintf("simulated CMP (discrete-event, %dB records): inserts per Mcycle", recordSize),
		Columns: []string{"cores", "serial", "decoupled", "consolidated", "cons. acq/insert", "mean group"},
	}
	simCores := []int{1, 2, 4, 8, 16, 32, 64}
	if s == Full {
		simCores = append(simCores, 128)
	}
	out := logsim.Sweep(logsim.DefaultParams(), simCores, 40000, recordSize)
	for i, n := range simCores {
		cons := out[logsim.Consolidated][i]
		sim.AddRow(fmt.Sprintf("%d", n),
			F(out[logsim.Serial][i].InsertsPerMCycle),
			F(out[logsim.Decoupled][i].InsertsPerMCycle),
			F(cons.InsertsPerMCycle),
			fmt.Sprintf("%.3f", cons.MutexAcqPerInsert),
			fmt.Sprintf("%.1f", cons.MeanGroupSize))
	}
	rep.Tab = append(rep.Tab, sim)
	rep.Notes = append(rep.Notes,
		"expected shape: serial throughput degrades/saturates with threads; consolidated stays flat-to-rising and its mutex acquisitions per insert drop well below 1 under load",
		fmt.Sprintf("measured table ran with GOMAXPROCS=%d; with a single hardware context insert critical sections never overlap, so the simulated table (substituting for the missing cores) carries the multi-core shape", runtime.GOMAXPROCS(0)))
	return rep, nil
}
