package harness

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/workload"
)

// E4 reproduces the Shore-MT tradeoff (claim C3): the conventional
// configuration — centralized everything, minimal per-operation
// overhead — wins at one thread, but the scalable configuration
// overtakes it as hardware contexts grow; past the crossover,
// favoring scalability wins.
func E4(s Scale) (*Report, error) {
	branches := 4
	accounts := 1000
	if s == Full {
		branches = 8
		accounts = 10000
	}
	rep := &Report{
		ID:    "E4",
		Title: "TPC-B: single-thread-optimized vs scalability-optimized engine",
		Claim: "C3: as the number of hardware contexts grows, favoring scalability wins",
	}
	tab := &Table{
		Title:   fmt.Sprintf("TPC-B-lite tps, %d branches x %d accounts", branches, accounts),
		Columns: []string{"threads", "conventional", "scalable", "scal/conv"},
	}

	systems := []struct {
		name string
		cfg  core.Config
	}{
		{"conventional", core.Conventional()},
		{"scalable", core.Scalable()},
	}
	engines := make([]*core.Engine, len(systems))
	loads := make([]*workload.TPCB, len(systems))
	for i, sys := range systems {
		e, err := core.Open(sys.cfg)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		w, err := workload.SetupTPCB(e, branches, 10, accounts)
		if err != nil {
			return nil, err
		}
		engines[i], loads[i] = e, w
	}

	for _, threads := range s.Threads() {
		tps := make([]float64, len(systems))
		for i := range systems {
			x := workload.LockExecutor{Engine: engines[i]}
			srcs := workerSources("e4"+systems[i].name, threads)
			ops, dur, err := RunWorkers(threads, s.Window(), func(w int) (uint64, error) {
				var n uint64
				for j := 0; j < 16; j++ {
					if err := loads[i].RunOne(srcs[w], x); err != nil {
						return n, err
					}
					n++
				}
				return n, nil
			})
			if err != nil {
				return nil, fmt.Errorf("E4 %s: %w", systems[i].name, err)
			}
			tps[i] = float64(ops) / dur.Seconds()
		}
		tab.AddRow(fmt.Sprintf("%d", threads), F(tps[0]), F(tps[1]),
			fmt.Sprintf("%.2fx", tps[1]/tps[0]))
	}
	rep.Tab = append(rep.Tab, tab)
	for i := range systems {
		if err := loads[i].Check(engines[i]); err != nil {
			return nil, fmt.Errorf("E4 %s invariant: %w", systems[i].name, err)
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: conventional leads (ratio < 1) at 1 thread — it pays no partitioning or consolidation overhead — and falls behind (ratio > 1) as threads grow",
		"TPC-B balance invariants verified on both engines after the sweep")
	return rep, nil
}
