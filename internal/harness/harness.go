// Package harness runs the paper-reproduction experiments E1-E8 (see
// DESIGN.md and EXPERIMENTS.md) and renders their results as the
// tables/series the underlying publications report. The same code
// backs cmd/hydra-bench and the top-level testing.B benchmarks.
package harness

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RunWorkers starts n workers, lets them run for d, and returns the
// total number of operations completed and the true elapsed time.
// Each worker loops calling body until stop becomes non-zero; body
// returns the number of operations it completed in that call.
func RunWorkers(n int, d time.Duration, body func(worker int) (ops uint64, err error)) (uint64, time.Duration, error) {
	var (
		stop  atomic.Uint32
		total atomic.Uint64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var local uint64
			for stop.Load() == 0 {
				ops, err := body(i)
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					break
				}
				local += ops
			}
			total.Add(local)
		}(i)
	}
	time.Sleep(d)
	stop.Store(1)
	wg.Wait()
	elapsed := time.Since(start)
	return total.Load(), elapsed, first
}

// Table is a printable result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Report is one experiment's output.
type Report struct {
	ID    string // "E1" ...
	Title string
	Claim string // which abstract claim it reproduces
	Tab   []*Table
	Notes []string
}

// Fprint renders the full report.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(w, "claim: %s\n\n", r.Claim)
	for _, t := range r.Tab {
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Scale selects experiment sizing.
type Scale int

const (
	// Quick is CI sizing: seconds per experiment.
	Quick Scale = iota
	// Full is report sizing: larger datasets, longer windows,
	// wider thread sweeps.
	Full
)

// Threads returns the thread sweep for the scale.
func (s Scale) Threads() []int {
	if s == Quick {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

// Window returns the per-cell measurement duration.
func (s Scale) Window() time.Duration {
	if s == Quick {
		return 150 * time.Millisecond
	}
	return 2 * time.Second
}

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}
