package harness

import (
	"fmt"

	"hydra/internal/sync2"
)

// E3 reproduces the spinning-vs-blocking study (claim C4): the
// mechanism used to enter a critical section dominates behavior as
// contention and oversubscription grow — spinning has the lowest
// handoff latency while hardware contexts are free, blocking wins
// when threads exceed contexts, and the hybrid tracks the better of
// the two.
func E3(s Scale) (*Report, error) {
	rep := &Report{
		ID:    "E3",
		Title: "critical-section primitives under contention: spin vs block vs hybrid",
		Claim: "C4: spinning wastes cycles, while blocking incurs high overhead",
	}
	tab := &Table{
		Title:   "lock acquisitions/s (4 units of work inside the section, 16 outside)",
		Columns: []string{"goroutines", "tas", "tatas", "ticket", "mcs", "block", "hybrid"},
	}
	threads := s.Threads()
	if s == Full {
		threads = append(threads, 128, 256) // deep oversubscription
	}
	for _, n := range threads {
		cells := []string{fmt.Sprintf("%d", n)}
		for _, kind := range sync2.Kinds() {
			r := sync2.Stress(kind, n, s.Window(), 4, 16)
			cells = append(cells, F(r.Throughput()))
		}
		tab.AddRow(cells...)
	}
	rep.Tab = append(rep.Tab, tab)
	rep.Notes = append(rep.Notes,
		"expected shape: pure spinlocks (tas/ticket) degrade sharply once goroutines exceed hardware contexts; blocking stays flat; hybrid tracks the better regime",
		"on a single-hardware-context host the oversubscribed regime dominates the whole sweep")
	return rep, nil
}
