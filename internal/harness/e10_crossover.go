package harness

import (
	"fmt"
	"runtime"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/txnsim"
	"hydra/internal/workload"
)

// E10 locates the contention crossover between the two execution
// models: as an increasing fraction of a read-modify-write mix lands
// on a tiny hot set, the conventional path queues on the centralized
// lock manager (hot lock heads, deadlock retries), while DORA
// serializes the hot rows on their owning executor with no lock-table
// interaction at all — the single-partition fast path ships each
// transaction as one job. At low skew DORA pays its dispatch overhead
// for nothing; the experiment reports where that trade flips.
func E10(s Scale) (*Report, error) {
	keys := uint64(8000)
	if s == Full {
		keys = 20000
	}
	const (
		hotKeys   = 8
		writeFrac = 0.8
	)
	threads := runtime.GOMAXPROCS(0)
	if threads > 8 {
		threads = 8
	}
	if threads < 2 {
		threads = 2
	}
	rep := &Report{
		ID:    "E10",
		Title: "contention crossover: shared lock manager vs DORA as skew rises",
		Claim: "C5: thread-to-data execution wins exactly where centralized locking collapses — on the contended tail",
	}
	tab := &Table{
		Title: fmt.Sprintf("micro RMW (%d keys, %d hot, %.0f%% writes, %d workers), ops/s",
			keys, hotKeys, writeFrac*100, threads),
		Columns: []string{"hot-frac", "lock-mgr", "dora", "dora/lock"},
	}

	// Conventional substrate for the lock-manager cells; scalable
	// substrate for DORA (its lock table is never touched).
	convCfg := core.Conventional()
	convCfg.Frames = 32768
	conv, err := core.Open(convCfg)
	if err != nil {
		return nil, err
	}
	defer conv.Close()
	convW, err := workload.SetupMicro(conv, keys, writeFrac, 0, 16)
	if err != nil {
		return nil, err
	}
	convW.HotKeys = hotKeys

	doraCfg := core.Scalable()
	doraCfg.Frames = 32768
	dcore, err := core.Open(doraCfg)
	if err != nil {
		return nil, err
	}
	defer dcore.Close()
	doraW, err := workload.SetupMicro(dcore, keys, writeFrac, 0, 16)
	if err != nil {
		return nil, err
	}
	doraW.HotKeys = hotKeys

	for _, hotFrac := range []float64{0, 0.2, 0.5, 0.8, 0.95} {
		convW.HotFrac = hotFrac
		doraW.HotFrac = hotFrac

		xc := workload.LockExecutor{Engine: conv}
		convSrc := make([]*workload.Sampler, threads)
		for w := range convSrc {
			convSrc[w] = convW.NewSampler(uint64(w) ^ uint64(hotFrac*1000)<<16)
		}
		convOps, convDur, err := RunWorkers(threads, s.Window(), func(w int) (uint64, error) {
			var n uint64
			for i := 0; i < 32; i++ {
				if err := convW.RunOne(convSrc[w], xc); err != nil {
					return n, err
				}
				n++
			}
			return n, nil
		})
		if err != nil {
			return nil, fmt.Errorf("E10 lock-mgr (hot %.2f): %w", hotFrac, err)
		}

		d := dora.New(dcore, dora.Options{Executors: threads})
		xd := workload.DoraExecutor{Engine: d}
		doraSrc := make([]*workload.Sampler, threads)
		for w := range doraSrc {
			doraSrc[w] = doraW.NewSampler(uint64(w) ^ uint64(hotFrac*1000)<<16)
		}
		doraOps, doraDur, err := RunWorkers(threads, s.Window(), func(w int) (uint64, error) {
			var n uint64
			for i := 0; i < 32; i++ {
				if err := doraW.RunOne(doraSrc[w], xd); err != nil {
					return n, err
				}
				n++
			}
			return n, nil
		})
		d.Close()
		if err != nil {
			return nil, fmt.Errorf("E10 dora (hot %.2f): %w", hotFrac, err)
		}

		convTPS := float64(convOps) / convDur.Seconds()
		doraTPS := float64(doraOps) / doraDur.Seconds()
		tab.AddRow(fmt.Sprintf("%.2f", hotFrac), F(convTPS), F(doraTPS),
			fmt.Sprintf("%.2fx", doraTPS/convTPS))
	}
	rep.Tab = append(rep.Tab, tab)

	// The measured table cannot show the multi-core side of the
	// crossover on a narrow machine: lock-manager latch contention and
	// parked-waiter convoys need critical sections from different
	// hardware contexts genuinely overlapping. The discrete-event
	// simulator regenerates that shape deterministically, against the
	// strongest conventional baseline (a 16-way partitioned lock
	// table), on a simulated 8-core CMP.
	simFracs := []float64{0, 0.2, 0.5, 0.8, 0.95}
	simP := txnsim.DefaultParams(8)
	simP.LockPartitions = 16
	simConv, simDora := txnsim.SweepSkew(simP, 8, simFracs, 40000)
	simTab := &Table{
		Title:   "simulated 8-core CMP, 16-way partitioned lock table, txns per Mcycle",
		Columns: []string{"hot-frac", "lock-mgr", "dora", "dora/lock", "lock-wait"},
	}
	for i, h := range simFracs {
		simTab.AddRow(fmt.Sprintf("%.2f", h),
			F(simConv[i].TxnsPerMCycle), F(simDora[i].TxnsPerMCycle),
			fmt.Sprintf("%.2fx", simDora[i].TxnsPerMCycle/simConv[i].TxnsPerMCycle),
			fmt.Sprintf("%.0f%%", simConv[i].LockWaitFrac*100))
	}
	rep.Tab = append(rep.Tab, simTab)

	// Both systems must conserve the per-key write counters.
	for _, p := range []struct {
		w *workload.Micro
		e *core.Engine
	}{{convW, conv}, {doraW, dcore}} {
		if _, err := p.w.TotalWrites(p.e); err != nil {
			return nil, err
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: dora/lock < 1 at hot-frac 0 (dispatch overhead, no contention to remove) and > 1 on the right edge (hot rows serialize on their executor instead of the lock manager)",
		fmt.Sprintf("ran with GOMAXPROCS=%d; wider machines push the measured crossover left", runtime.GOMAXPROCS(0)),
		"simulated table: skew re-concentrates latch traffic on the hot rows' stripes and every contended row transfer costs a park/unpark, while DORA's hot executor serves its backlog by batched drain — no lock manager anywhere on the path")
	return rep, nil
}
