package harness

import (
	"fmt"
	"runtime"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/rng"
	"hydra/internal/txnsim"
	"hydra/internal/workload"
)

// E1 reproduces the DORA result (claim C5): on a short-transaction
// telecom workload, conventional thread-to-transaction execution
// through the centralized lock manager stops scaling, while
// thread-to-data execution keeps climbing.
func E1(s Scale) (*Report, error) {
	// The standard kit scales subscribers with throughput capacity; a
	// moderate table keeps lock conflicts in play (on very large
	// uniform key spaces conflicts vanish and both systems converge).
	subscribers := uint64(2000)
	if s == Full {
		subscribers = 5000
	}
	rep := &Report{
		ID:    "E1",
		Title: "TATP throughput: conventional (centralized locking) vs DORA (thread-to-data)",
		Claim: "C5: decoupling transaction data access from process assignment removes the centralized-locking obstacle",
	}
	tab := &Table{
		Title:   fmt.Sprintf("TATP-lite, %d subscribers, ops/s", subscribers),
		Columns: []string{"threads", "conventional", "dora", "dora/conv"},
	}

	// Conventional system. The cited TATP studies run with the data
	// resident in the buffer pool, so size the pool to the dataset.
	convCfg := core.Conventional()
	convCfg.Frames = 32768
	conv, err := core.Open(convCfg)
	if err != nil {
		return nil, err
	}
	defer conv.Close()
	convW, err := workload.SetupTATP(conv, subscribers)
	if err != nil {
		return nil, err
	}

	// DORA system: scalable substrate, no lock-table usage.
	doraCfg := core.Scalable()
	doraCfg.Frames = 32768
	dcore, err := core.Open(doraCfg)
	if err != nil {
		return nil, err
	}
	defer dcore.Close()
	doraW, err := workload.SetupTATP(dcore, subscribers)
	if err != nil {
		return nil, err
	}

	// Warm both pools so the first sweep cells are not measuring
	// load-time writebacks.
	warm := workerSources("e1warm", 2)
	xw := workload.LockExecutor{Engine: conv}
	for i := 0; i < 2000; i++ {
		if err := convW.RunOne(warm[0], xw); err != nil {
			return nil, err
		}
	}
	dwarm := dora.New(dcore, dora.Options{Executors: 2, RouteShift: 4})
	xdw := workload.DoraExecutor{Engine: dwarm}
	for i := 0; i < 2000; i++ {
		if err := doraW.RunOne(warm[1], xdw); err != nil {
			dwarm.Close()
			return nil, err
		}
	}
	dwarm.Close()

	for _, threads := range s.Threads() {
		// Conventional cell.
		xc := workload.LockExecutor{Engine: conv}
		convSrc := workerSources("e1conv", threads)
		convOps, convDur, err := RunWorkers(threads, s.Window(), func(w int) (uint64, error) {
			src := convSrc[w]
			var n uint64
			for i := 0; i < 32; i++ {
				if err := convW.RunOne(src, xc); err != nil {
					return n, err
				}
				n++
			}
			return n, nil
		})
		if err != nil {
			return nil, fmt.Errorf("E1 conventional: %w", err)
		}

		// DORA cell: executor pool sized to the thread budget.
		d := dora.New(dcore, dora.Options{Executors: threads, RouteShift: 4})
		xd := workload.DoraExecutor{Engine: d}
		doraSrc := workerSources("e1dora", threads)
		doraOps, doraDur, err := RunWorkers(threads, s.Window(), func(w int) (uint64, error) {
			src := doraSrc[w]
			var n uint64
			for i := 0; i < 32; i++ {
				if err := doraW.RunOne(src, xd); err != nil {
					return n, err
				}
				n++
			}
			return n, nil
		})
		d.Close()
		if err != nil {
			return nil, fmt.Errorf("E1 dora: %w", err)
		}

		convTPS := float64(convOps) / convDur.Seconds()
		doraTPS := float64(doraOps) / doraDur.Seconds()
		tab.AddRow(fmt.Sprintf("%d", threads), F(convTPS), F(doraTPS),
			fmt.Sprintf("%.2fx", doraTPS/convTPS))
	}
	rep.Tab = append(rep.Tab, tab)
	if err := convW.Check(conv); err != nil {
		return nil, err
	}
	if err := doraW.Check(dcore); err != nil {
		return nil, err
	}

	// The phenomenon DORA removes — lock-manager latch contention —
	// needs genuinely parallel cores. The discrete-event simulator
	// regenerates the multi-core shape deterministically.
	sim := &Table{
		Title:   "simulated CMP (discrete-event): txns per Mcycle",
		Columns: []string{"cores", "conventional", "lock-wait frac", "dora", "dora/conv"},
	}
	simCores := []int{1, 2, 4, 8, 16, 32, 64}
	if s == Full {
		simCores = append(simCores, 128)
	}
	convSim, doraSim := txnsim.Sweep(txnsim.DefaultParams(1), simCores, 40000)
	for i, n := range simCores {
		sim.AddRow(fmt.Sprintf("%d", n),
			F(convSim[i].TxnsPerMCycle),
			fmt.Sprintf("%.2f", convSim[i].LockWaitFrac),
			F(doraSim[i].TxnsPerMCycle),
			fmt.Sprintf("%.2fx", doraSim[i].TxnsPerMCycle/convSim[i].TxnsPerMCycle))
	}
	rep.Tab = append(rep.Tab, sim)
	rep.Notes = append(rep.Notes,
		"expected shape: conventional flattens/degrades as cores grow (lock-table latches serialize); DORA keeps rising and wins past the crossover",
		fmt.Sprintf("measured table ran with GOMAXPROCS=%d; on a single hardware context lock-table critical sections never overlap, so DORA pays its dispatch cost without its contention win — the simulated table (substituting for the missing cores) carries the multi-core shape", runtime.GOMAXPROCS(0)),
		"workload invariants verified after the sweep on both systems")
	return rep, nil
}

// workerSources derives one deterministic stream per worker of a
// sweep cell, so workers never share (mutex-protected) state.
func workerSources(tag string, threads int) []*rng.Source {
	h := uint64(1469598103934665603)
	for _, c := range tag {
		h = (h ^ uint64(c)) * 1099511628211
	}
	out := make([]*rng.Source, threads)
	for w := range out {
		out[w] = rng.New(h ^ uint64(threads)<<32 ^ uint64(w))
	}
	return out
}
