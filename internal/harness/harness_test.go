package harness

import (
	"strings"
	"testing"
	"time"
)

func TestRunWorkersCountsOps(t *testing.T) {
	ops, dur, err := RunWorkers(4, 50*time.Millisecond, func(int) (uint64, error) {
		return 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ops == 0 {
		t.Fatal("no ops counted")
	}
	if dur < 50*time.Millisecond {
		t.Fatalf("elapsed %v below window", dur)
	}
}

func TestRunWorkersPropagatesError(t *testing.T) {
	_, _, err := RunWorkers(2, 20*time.Millisecond, func(w int) (uint64, error) {
		if w == 1 {
			return 0, errTest
		}
		return 1, nil
	})
	if err != errTest {
		t.Fatalf("err = %v", err)
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }

func TestTablePrint(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	tab.AddRow("333333", "4")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-column") || !strings.Contains(out, "333333") {
		t.Fatalf("table output malformed:\n%s", out)
	}
}

func TestFFormat(t *testing.T) {
	if F(12.3) != "12.3" || F(12300) != "12.3k" || F(12_300_000) != "12.30M" {
		t.Fatalf("F formats: %s %s %s", F(12.3), F(12300), F(12_300_000))
	}
}

func TestFindRegistry(t *testing.T) {
	if len(All()) != 12 {
		t.Fatalf("registry has %d experiments", len(All()))
	}
	if _, err := Find("e4"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("Find accepted unknown id")
	}
}

// Every experiment must run end-to-end at Quick scale and produce a
// non-empty report. This is the integration test of the whole stack.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds each")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			rep, err := exp.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(rep.Tab) == 0 || len(rep.Tab[0].Rows) == 0 {
				t.Fatalf("%s produced an empty report", exp.ID)
			}
			var sb strings.Builder
			rep.Fprint(&sb)
			if !strings.Contains(sb.String(), rep.ID+":") {
				t.Fatalf("%s report print malformed", exp.ID)
			}
			t.Logf("\n%s", sb.String())
		})
	}
}
