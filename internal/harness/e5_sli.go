package harness

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/lock"
	"hydra/internal/workload"
)

// E5 reproduces the Speculative Lock Inheritance result (claim C5's
// locking half): hot intent locks — acquired by every transaction on
// every table it touches — are exactly the lock-manager traffic that
// serializes the system, and letting agent threads carry them across
// transaction boundaries removes most lock-table visits.
func E5(s Scale) (*Report, error) {
	keys := uint64(5000)
	if s == Full {
		keys = 100000
	}
	rep := &Report{
		ID:    "E5",
		Title: "Speculative Lock Inheritance: hot intent locks bypass the lock table",
		Claim: "C5: typical obstacles are by-definition centralized operations, such as locking",
	}
	tab := &Table{
		Title:   fmt.Sprintf("zipf(0.9) microbenchmark over %d keys, 20%% writes", keys),
		Columns: []string{"threads", "no-SLI tps", "SLI tps", "no-SLI tableops/op", "SLI tableops/op", "inherited hits"},
	}

	for _, threads := range s.Threads() {
		row := []string{fmt.Sprintf("%d", threads)}
		var tableOps [2]float64
		var inherited uint64
		for pass, useSLI := range []bool{false, true} {
			e, err := core.Open(core.Scalable())
			if err != nil {
				return nil, err
			}
			w, err := workload.SetupMicro(e, keys, 0.2, 0.9, 32)
			if err != nil {
				e.Close()
				return nil, err
			}
			before := e.StatsSnapshot().Lock

			agents := make([]*lock.Agent, threads)
			samplers := make([]*workload.Sampler, threads)
			for i := range agents {
				if useSLI {
					agents[i] = e.Locks().NewAgent()
				}
				samplers[i] = w.NewSampler(uint64(1000*threads + i))
			}
			ops, dur, err := RunWorkers(threads, s.Window(), func(wk int) (uint64, error) {
				x := workload.LockExecutor{Engine: e, Agent: agents[wk]}
				var n uint64
				for i := 0; i < 32; i++ {
					if err := w.RunOne(samplers[wk], x); err != nil {
						return n, err
					}
					n++
				}
				return n, nil
			})
			if err != nil {
				e.Close()
				return nil, fmt.Errorf("E5 sli=%v: %w", useSLI, err)
			}
			after := e.StatsSnapshot().Lock
			if ops > 0 {
				tableOps[pass] = float64(after.TableOps-before.TableOps) / float64(ops)
			}
			inherited = after.Inherited - before.Inherited
			for _, a := range agents {
				if a != nil {
					a.Close()
				}
			}
			e.Close()
			row = append(row, F(float64(ops)/dur.Seconds()))
		}
		row = append(row,
			fmt.Sprintf("%.2f", tableOps[0]),
			fmt.Sprintf("%.2f", tableOps[1]),
			fmt.Sprintf("%d", inherited))
		tab.AddRow(row...)
	}
	rep.Tab = append(rep.Tab, tab)
	rep.Notes = append(rep.Notes,
		"expected shape: with SLI, lock-table operations per transaction drop (the table IX is inherited, not re-acquired) and throughput rises with thread count",
		"row X locks are never inherited; only intent locks above row level are speculation-worthy")
	return rep, nil
}
