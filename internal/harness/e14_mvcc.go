package harness

import (
	"fmt"
	"runtime"

	"hydra/internal/core"
	"hydra/internal/workload"
)

// E14 measures what MVCC snapshot reads buy on a read-mostly mix with
// writers present: the same micro workload runs its read operations
// either through the conventional locked path (IS/S acquisition on
// the shared lock manager, blocking behind in-flight writers) or as
// lock-free snapshot transactions resolved against the undo-based
// version chains. Both cells share one MVCC-enabled substrate, so the
// writers pay identical version-install costs and the only variable
// is the read path. The lock-acquire and mvcc counters per cell show
// the mechanism: snapshot reads add zero lock-manager traffic while
// hydra_mvcc_snapshot_reads climbs one-for-one with throughput.
func E14(s Scale) (*Report, error) {
	keys := uint64(8000)
	if s == Full {
		keys = 20000
	}
	const hotKeys = 16
	threads := runtime.GOMAXPROCS(0)
	if threads > 8 {
		threads = 8
	}
	if threads < 2 {
		threads = 2
	}
	rep := &Report{
		ID:    "E14",
		Title: "MVCC snapshot reads vs locked reads under write traffic",
		Claim: "C2: readers and writers need not block each other — versioned reads remove the reader's lock-manager interaction entirely",
	}
	tab := &Table{
		Title: fmt.Sprintf("micro mix (%d keys, %d hot, %d workers), ops/s and per-cell counter deltas",
			keys, hotKeys, threads),
		Columns: []string{"write-frac", "read path", "ops/s", "lock acq", "snap reads", "chain reads"},
	}

	cfg := core.Scalable()
	cfg.Frames = 32768
	cfg.MVCC = true
	e, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	w, err := workload.SetupMicro(e, keys, 0, 0, 16)
	if err != nil {
		return nil, err
	}
	w.HotKeys = hotKeys
	w.HotFrac = 0.5

	var ratios []string
	for _, writeFrac := range []float64{0.05, 0.2, 0.5} {
		w.WriteFrac = writeFrac
		var opsBySnap [2]float64
		for _, snapFrac := range []float64{0, 1} {
			w.SnapFrac = snapFrac
			x := workload.LockExecutor{Engine: e}
			src := make([]*workload.Sampler, threads)
			for i := range src {
				src[i] = w.NewSampler(uint64(i)<<8 ^ uint64(writeFrac*100) ^ uint64(snapFrac*7))
			}
			before := e.StatsSnapshot()
			ops, dur, err := RunWorkers(threads, s.Window(), func(wk int) (uint64, error) {
				var n uint64
				for i := 0; i < 32; i++ {
					if err := w.RunOne(src[wk], x); err != nil {
						return n, err
					}
					n++
				}
				return n, nil
			})
			if err != nil {
				return nil, fmt.Errorf("E14 (write %.2f snap %.0f): %w", writeFrac, snapFrac, err)
			}
			after := e.StatsSnapshot()

			path := "locked"
			if snapFrac > 0 {
				path = "snapshot"
			}
			tps := float64(ops) / dur.Seconds()
			opsBySnap[int(snapFrac)] = tps
			tab.AddRow(fmt.Sprintf("%.2f", writeFrac), path, F(tps),
				F(float64(after.Lock.Acquires-before.Lock.Acquires)),
				F(float64(after.Mvcc.SnapshotReads-before.Mvcc.SnapshotReads)),
				F(float64(after.Mvcc.ChainReads-before.Mvcc.ChainReads)))
		}
		ratios = append(ratios, fmt.Sprintf("%.2f: %.2fx", writeFrac, opsBySnap[1]/opsBySnap[0]))
	}
	rep.Tab = append(rep.Tab, tab)

	// Conservation: the per-key write counters must still sum
	// consistently after both read paths ran against the table.
	if _, err := w.TotalWrites(e); err != nil {
		return nil, err
	}
	st := e.StatsSnapshot()
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("snapshot/locked ops ratio by write-frac: %v", ratios),
		fmt.Sprintf("version-chain state at end: installs=%d live_nodes=%d gc_nodes=%d sweeps=%d lock_bypasses=%d",
			st.Mvcc.Installs, st.Mvcc.LiveNodes, st.Mvcc.GCNodes, st.Mvcc.GCSweeps, st.Lock.Bypasses),
		"both cells run on the same MVCC-enabled engine (writers pay identical version-install cost); the lock-acq column isolates the read path — snapshot cells show only the writers' acquisitions",
		fmt.Sprintf("ran with GOMAXPROCS=%d; the snapshot advantage grows with writer concurrency since locked readers queue behind X holders", runtime.GOMAXPROCS(0)))
	return rep, nil
}
