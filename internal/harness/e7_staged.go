package harness

import (
	"fmt"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/staged"
	"hydra/internal/workload"
)

// E7 reproduces the StagedDB/QPipe shared-scan result (claim C7): a
// service-oriented engine that routes all scans of a table through
// one stage can serve N concurrent queries with ~1 physical scan,
// while the query-at-a-time baseline performs N.
func E7(s Scale) (*Report, error) {
	rows := uint64(5000)
	if s == Full {
		rows = 100000
	}
	rep := &Report{
		ID:    "E7",
		Title: "staged query engine: shared scans vs query-at-a-time",
		Claim: "C7: service-oriented architectures provide an excellent framework to exploit available parallelism",
	}
	tab := &Table{
		Title:   fmt.Sprintf("aggregate over %d rows: queries/s and physical scans", rows),
		Columns: []string{"concurrent queries", "private q/s", "shared q/s", "shared/private", "private scans", "shared scans"},
	}

	clients := []int{1, 2, 4, 8}
	if s == Full {
		clients = append(clients, 16, 32)
	}

	// One engine+data per mode, reused across the client sweep.
	engines := make([]*core.Engine, 2)
	stagedEngines := make([]*staged.Engine, 2)
	for i, sharedMode := range []bool{false, true} {
		e, err := core.Open(core.Scalable())
		if err != nil {
			return nil, err
		}
		defer e.Close()
		w, err := workload.SetupMicro(e, rows, 0, 0, 16)
		if err != nil {
			return nil, err
		}
		_ = w
		engines[i] = e
		stagedEngines[i] = staged.New(e, staged.Options{SharedScans: sharedMode})
	}

	for _, n := range clients {
		var qps [2]float64
		var scans [2]uint64
		for i := range stagedEngines {
			se := stagedEngines[i]
			tbl, err := engines[i].Table("micro_kv")
			if err != nil {
				return nil, err
			}
			before := se.StatsSnapshot()
			done := make(chan error, n)
			var completed uint64
			var mu sync.Mutex
			start := time.Now()
			for c := 0; c < n; c++ {
				go func() {
					var err error
					for j := 0; j < queriesPerClient(s); j++ {
						if _, err = se.Execute(staged.Query{Table: tbl}); err != nil {
							break
						}
						mu.Lock()
						completed++
						mu.Unlock()
					}
					done <- err
				}()
			}
			for c := 0; c < n; c++ {
				if err := <-done; err != nil {
					return nil, fmt.Errorf("E7: %w", err)
				}
			}
			elapsed := time.Since(start)
			after := se.StatsSnapshot()
			qps[i] = float64(completed) / elapsed.Seconds()
			scans[i] = after.PhysicalScans - before.PhysicalScans
		}
		tab.AddRow(fmt.Sprintf("%d", n),
			F(qps[0]), F(qps[1]), fmt.Sprintf("%.2fx", qps[1]/qps[0]),
			fmt.Sprintf("%d", scans[0]), fmt.Sprintf("%d", scans[1]))
	}
	rep.Tab = append(rep.Tab, tab)
	rep.Notes = append(rep.Notes,
		"expected shape: private-scan throughput decays as concurrent queries contend; shared scans amortize one physical pass over the whole batch, so physical scans stay near-constant while queries grow")
	return rep, nil
}

func queriesPerClient(s Scale) int {
	if s == Quick {
		return 3
	}
	return 10
}
