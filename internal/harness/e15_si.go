package harness

import (
	"errors"
	"fmt"
	"runtime"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/workload"
)

// E15 locates the contention crossover for snapshot-isolation writers:
// the same read-modify-write mix runs its writes either through the
// conventional locked path (X lock held across the whole read-modify-
// write), as SI transactions (lock-free snapshot read, buffered write,
// commit-time first-committer-wins validation that holds the row lock
// only for the validate+apply window), or on DORA executors. At low
// contention SI writers pay validation for nothing and collide with
// no one; as the hot set concentrates, the conflict-abort rate is the
// price SI pays where the locked path pays lock waits instead — the
// abort-rate column makes that trade measurable.
func E15(s Scale) (*Report, error) {
	keys := uint64(8000)
	if s == Full {
		keys = 20000
	}
	const (
		hotKeys   = 8
		writeFrac = 0.8
	)
	threads := runtime.GOMAXPROCS(0)
	if threads > 8 {
		threads = 8
	}
	if threads < 2 {
		threads = 2
	}
	rep := &Report{
		ID:    "E15",
		Title: "SI writers vs locked writers vs DORA as contention rises",
		Claim: "C5: optimistic commit-time validation keeps writers off the lock manager until conflicts are real — the abort rate, not lock waits, is the contention bill",
	}
	tab := &Table{
		Title: fmt.Sprintf("micro RMW (%d keys, %d hot, %.0f%% writes, %d workers), ops/s",
			keys, hotKeys, writeFrac*100, threads),
		Columns: []string{"hot-frac", "locked", "si", "dora", "si/locked", "si-conflict-rate"},
	}

	// Locked and SI cells share one MVCC-enabled substrate (identical
	// version-install cost; only the write path varies). DORA runs on
	// its own engine, as in E10.
	cfg := core.Scalable()
	cfg.Frames = 32768
	cfg.MVCC = true
	e, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	w, err := workload.SetupMicro(e, keys, writeFrac, 0, 16)
	if err != nil {
		return nil, err
	}
	w.HotKeys = hotKeys

	doraCfg := core.Scalable()
	doraCfg.Frames = 32768
	dcore, err := core.Open(doraCfg)
	if err != nil {
		return nil, err
	}
	defer dcore.Close()
	doraW, err := workload.SetupMicro(dcore, keys, writeFrac, 0, 16)
	if err != nil {
		return nil, err
	}
	doraW.HotKeys = hotKeys

	runCell := func(mw *workload.Micro, x workload.Executor, seed uint64) (float64, error) {
		src := make([]*workload.Sampler, threads)
		for i := range src {
			src[i] = mw.NewSampler(uint64(i)<<8 ^ seed)
		}
		ops, dur, err := RunWorkers(threads, s.Window(), func(wk int) (uint64, error) {
			var n uint64
			for i := 0; i < 32; i++ {
				if err := mw.RunOne(src[wk], x); err != nil {
					// An SI write that lost first-committer-wins on
					// every retry is a measured abort, not a harness
					// failure; it simply contributes no op.
					if errors.Is(err, core.ErrWriteConflict) {
						continue
					}
					return n, err
				}
				n++
			}
			return n, nil
		})
		if err != nil {
			return 0, err
		}
		return float64(ops) / dur.Seconds(), nil
	}

	var rates []string
	for _, hotFrac := range []float64{0, 0.5, 0.9} {
		w.HotFrac = hotFrac
		doraW.HotFrac = hotFrac
		seed := uint64(hotFrac*1000) << 16

		w.SIFrac = 0
		lockedTPS, err := runCell(w, workload.LockExecutor{Engine: e}, seed)
		if err != nil {
			return nil, fmt.Errorf("E15 locked (hot %.2f): %w", hotFrac, err)
		}

		w.SIFrac = 1
		before := e.StatsSnapshot().Mvcc
		siTPS, err := runCell(w, workload.LockExecutor{Engine: e}, seed^0x5151)
		if err != nil {
			return nil, fmt.Errorf("E15 si (hot %.2f): %w", hotFrac, err)
		}
		after := e.StatsSnapshot().Mvcc
		commits := after.SICommits - before.SICommits
		conflicts := after.SIConflictAborts - before.SIConflictAborts
		rate := 0.0
		if commits+conflicts > 0 {
			rate = float64(conflicts) / float64(commits+conflicts)
		}

		d := dora.New(dcore, dora.Options{Executors: threads})
		doraTPS, err := runCell(doraW, workload.DoraExecutor{Engine: d}, seed)
		d.Close()
		if err != nil {
			return nil, fmt.Errorf("E15 dora (hot %.2f): %w", hotFrac, err)
		}

		tab.AddRow(fmt.Sprintf("%.2f", hotFrac), F(lockedTPS), F(siTPS), F(doraTPS),
			fmt.Sprintf("%.2fx", siTPS/lockedTPS),
			fmt.Sprintf("%.1f%%", rate*100))
		rates = append(rates, fmt.Sprintf("%.2f: %.1f%%", hotFrac, rate*100))
	}
	rep.Tab = append(rep.Tab, tab)

	// Both engines must conserve the per-key write counters (SI commit
	// validation must never have let two increments race).
	for _, p := range []struct {
		w *workload.Micro
		e *core.Engine
	}{{w, e}, {doraW, dcore}} {
		if _, err := p.w.TotalWrites(p.e); err != nil {
			return nil, err
		}
	}
	st := e.StatsSnapshot()
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("si conflict-abort rate by hot-frac: %v (commit attempts lost to first-committer-wins, after ExecSI's internal retries succeeded or gave up)", rates),
		fmt.Sprintf("si totals: begins=%d commits=%d conflict_aborts=%d; lock_bypasses=%d (reads the SI path never sent to the lock manager)",
			st.Mvcc.SIBegins, st.Mvcc.SICommits, st.Mvcc.SIConflictAborts, st.Lock.Bypasses),
		"expected shape: si/locked ≈ 1 at hot-frac 0 (validation is cheap, conflicts absent) and degrading as the hot set concentrates — the conflict-rate column should climb in step, the locked cell pays the same contention as lock waits instead",
		fmt.Sprintf("ran with GOMAXPROCS=%d", runtime.GOMAXPROCS(0)))
	return rep, nil
}
