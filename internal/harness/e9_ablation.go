package harness

import (
	"fmt"
	"sort"
	"time"

	"hydra/internal/btree"
	"hydra/internal/core"
	"hydra/internal/latch"
	"hydra/internal/wal"
	"hydra/internal/workload"
)

// E9 is the ablation study DESIGN.md calls for: starting from the
// fully scalable configuration, each scalable construct is reverted
// to its conventional form in isolation, quantifying how much of the
// end-to-end win each redesign contributes (and confirming none of
// them is a regression in disguise).
func E9(s Scale) (*Report, error) {
	branches := 4
	accounts := 1000
	threads := 8
	if s == Full {
		branches = 8
		accounts = 10000
		threads = 32
	}
	rep := &Report{
		ID:    "E9",
		Title: "ablation: each scalable construct reverted in isolation",
		Claim: "the keynote's thesis: *every* centralized construct needs rethinking, not one",
	}
	tab := &Table{
		Title:   fmt.Sprintf("TPC-B-lite tps at %d threads (%d branches)", threads, branches),
		Columns: []string{"configuration", "tps", "vs scalable"},
	}

	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"scalable (all on)", func(*core.Config) {}},
		{"- consolidated log (serial)", func(c *core.Config) { c.LogKind = wal.Serial }},
		{"- lock partitioning (1 part)", func(c *core.Config) { c.LockPartitions = 1 }},
		{"- buffer sharding (1 shard)", func(c *core.Config) { c.BufferShards = 1 }},
		{"- early lock release", func(c *core.Config) { c.ELR = false }},
		{"- latch crabbing (coarse idx)", func(c *core.Config) { c.IndexMode = btree.Coarse }},
		{"- spinning latches (blocking)", func(c *core.Config) { c.LatchKind = latch.Blocking }},
		{"conventional (all off)", func(c *core.Config) { *c = core.Conventional() }},
	}

	var baseline float64
	for _, v := range variants {
		cfg := core.Scalable()
		v.mut(&cfg)
		e, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		w, err := workload.SetupTPCB(e, branches, 10, accounts)
		if err != nil {
			e.Close()
			return nil, err
		}
		srcs := workerSources("e9"+v.name, threads)
		x := workload.LockExecutor{Engine: e}
		// Warm the pool and runtime before the measured window so every
		// variant starts from comparable state.
		warm := workerSources("e9warm"+v.name, 1)[0]
		for i := 0; i < 3000; i++ {
			if err := w.RunOne(warm, x); err != nil {
				e.Close()
				return nil, err
			}
		}
		// Median of three trials: on small hosts a single window is
		// dominated by scheduler and GC luck.
		var trials []float64
		err = nil
		for trial := 0; trial < 3 && err == nil; trial++ {
			var ops uint64
			var dur time.Duration
			ops, dur, err = RunWorkers(threads, s.Window(), func(wk int) (uint64, error) {
				var n uint64
				for j := 0; j < 16; j++ {
					if err := w.RunOne(srcs[wk], x); err != nil {
						return n, err
					}
					n++
				}
				return n, nil
			})
			trials = append(trials, float64(ops)/dur.Seconds())
		}
		if err == nil {
			err = w.Check(e)
		}
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("E9 %s: %w", v.name, err)
		}
		sort.Float64s(trials)
		tps := trials[len(trials)/2]
		if baseline == 0 {
			baseline = tps
		}
		tab.AddRow(v.name, F(tps), fmt.Sprintf("%.2fx", tps/baseline))
	}
	rep.Tab = append(rep.Tab, tab)
	rep.Notes = append(rep.Notes,
		"expected shape ON MULTI-CONTEXT HARDWARE: each knockout costs throughput; the constructs whose loss hurts most are the workload's bottlenecks",
		"expected shape ON A SINGLE HARDWARE CONTEXT: several knockouts *help* — spinning, consolidation grouping, and crabbing pay pure overhead when nothing runs in parallel; this is exactly claim C3's tradeoff seen from its other side",
		"TPC-B balance invariants verified for every variant")
	return rep, nil
}
