package harness

import (
	"fmt"

	"hydra/internal/cmpmodel"
)

// E6 regenerates the CMP scaling-trend figures (claims C1 and C2)
// from the analytical model: bounded speedup as cores grow, an
// interior optimum in cache size, and the shared-vs-private cache
// tradeoff.
func E6(s Scale) (*Report, error) {
	rep := &Report{
		ID:    "E6",
		Title: "analytical CMP model: core scaling, cache sizing, sharing",
		Claim: "C1: parallelism methods are of bounded utility; C2: bigger caches / aggressive sharing often detrimental",
	}

	cores := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if s == Full {
		cores = append(cores, 256, 512, 1024)
	}

	// Figure A: speedup vs cores, both workload profiles.
	m := cmpmodel.DefaultMachine()
	m.L2MB = 16
	fa := &Table{
		Title:   "A. speedup over 1 core (16MB shared L2)",
		Columns: []string{"cores", "oltp speedup", "oltp efficiency", "dss speedup", "dss bw-bound"},
	}
	oltpSp := cmpmodel.Speedup(m, cmpmodel.OLTP(), cores)
	dssSp := cmpmodel.Speedup(m, cmpmodel.DSS(), cores)
	dssRes := cmpmodel.SweepCores(m, cmpmodel.DSS(), cores)
	for i, n := range cores {
		fa.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1fx", oltpSp[i]),
			fmt.Sprintf("%.0f%%", 100*oltpSp[i]/float64(n)),
			fmt.Sprintf("%.1fx", dssSp[i]),
			fmt.Sprintf("%v", dssRes[i].BandwidthBound))
	}
	rep.Tab = append(rep.Tab, fa)

	// Figure B: throughput vs L2 capacity at fixed cores (OLTP).
	mb := cmpmodel.DefaultMachine()
	mb.Cores = 16
	sizes := []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	fb := &Table{
		Title:   "B. OLTP throughput vs shared L2 capacity (16 cores)",
		Columns: []string{"L2 MB", "tps", "L2 miss", "L2 hit lat (cy)"},
	}
	for _, r := range cmpmodel.SweepCache(mb, cmpmodel.OLTP(), sizes) {
		fb.AddRow("", F(r.TPS), fmt.Sprintf("%.3f", r.L2Miss), fmt.Sprintf("%.1f", r.L2HitLatency))
	}
	for i := range fb.Rows {
		fb.Rows[i][0] = fmt.Sprintf("%g", sizes[i])
	}
	rep.Tab = append(rep.Tab, fb)

	// Figure C: shared vs private L2 across core counts (OLTP).
	fc := &Table{
		Title:   "C. OLTP throughput: shared vs private L2 (32MB total)",
		Columns: []string{"cores", "shared", "private", "shared/private"},
	}
	for _, n := range cores {
		mc := cmpmodel.DefaultMachine()
		mc.Cores = n
		mc.L2MB = 32
		mc.SharedL2 = true
		sh := cmpmodel.Evaluate(mc, cmpmodel.OLTP()).TPS
		mc.SharedL2 = false
		pr := cmpmodel.Evaluate(mc, cmpmodel.OLTP()).TPS
		fc.AddRow(fmt.Sprintf("%d", n), F(sh), F(pr), fmt.Sprintf("%.2f", sh/pr))
	}
	rep.Tab = append(rep.Tab, fc)

	rep.Notes = append(rep.Notes,
		"A: efficiency collapses at high core counts (C1); DSS hits the pin-bandwidth wall outright",
		"B: throughput peaks at an interior cache size, then falls as wire delay outgrows the miss savings (C2)",
		"C: the best cache organization flips with core count — aggressive sharing is not universally good (C2)")
	return rep, nil
}
