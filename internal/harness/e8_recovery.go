package harness

import (
	"fmt"
	"time"

	"hydra/internal/buffer"
	"hydra/internal/core"
	"hydra/internal/hist"
	"hydra/internal/wal"
	"hydra/internal/workload"
)

// E8 reproduces the Aether commit-path results and validates restart
// (claim C6's transaction-side half): early lock release stops the
// log-flush latency from extending lock hold times on hot rows, and
// ARIES restart replays a crashed database to a consistent state in
// time linear in the log.
func E8(s Scale) (*Report, error) {
	rep := &Report{
		ID:    "E8",
		Title: "commit path (ELR) and ARIES restart",
		Claim: "C6: logging's serial latency must not serialize the rest of the system",
	}

	// Part A: ELR under a slow log device and a hot key.
	keys := uint64(64) // few keys: every transaction collides
	elr := &Table{
		Title:   "A. hot-key update tps with a 200µs-sync log device",
		Columns: []string{"threads", "ELR off", "ELR on", "on/off", "p99 off", "p99 on"},
	}
	for _, threads := range s.Threads() {
		var tps [2]float64
		var p99 [2]time.Duration
		for i, useELR := range []bool{false, true} {
			cfg := core.Scalable()
			cfg.ELR = useELR
			dev := wal.NewMem()
			dev.SyncFn = func() { time.Sleep(200 * time.Microsecond) }
			e, err := core.OpenWith(cfg, buffer.NewMemStore(), dev)
			if err != nil {
				return nil, err
			}
			w, err := workload.SetupMicro(e, keys, 1.0, 0, 16)
			if err != nil {
				e.Close()
				return nil, err
			}
			samplers := make([]*workload.Sampler, threads)
			hists := make([]*hist.H, threads)
			for j := range samplers {
				samplers[j] = w.NewSampler(uint64(j))
				hists[j] = &hist.H{}
			}
			x := workload.LockExecutor{Engine: e}
			ops, dur, err := RunWorkers(threads, s.Window(), func(wk int) (uint64, error) {
				var n uint64
				for j := 0; j < 8; j++ {
					t0 := time.Now()
					if err := w.RunOne(samplers[wk], x); err != nil {
						return n, err
					}
					hists[wk].Observe(time.Since(t0))
					n++
				}
				return n, nil
			})
			e.Close()
			if err != nil {
				return nil, fmt.Errorf("E8 elr=%v: %w", useELR, err)
			}
			tps[i] = float64(ops) / dur.Seconds()
			var all hist.H
			for _, h := range hists {
				all.Merge(h)
			}
			p99[i] = all.Quantile(0.99).Round(time.Microsecond)
		}
		elr.AddRow(fmt.Sprintf("%d", threads), F(tps[0]), F(tps[1]),
			fmt.Sprintf("%.2fx", tps[1]/tps[0]),
			p99[0].String(), p99[1].String())
	}
	rep.Tab = append(rep.Tab, elr)

	// Part B: restart time and work vs log length.
	sizes := []int{1000, 2000, 4000}
	if s == Full {
		sizes = []int{10000, 20000, 40000, 80000}
	}
	rec := &Table{
		Title:   "B. ARIES restart vs committed transactions (one in-flight loser); ckpt = fuzzy checkpoint at 90%",
		Columns: []string{"txns", "ckpt", "analyzed", "restart ms", "redone", "skipped", "losers", "verified"},
	}
	for _, n := range sizes {
		for _, useCkpt := range []bool{false, true} {
			store := buffer.NewMemStore()
			dev := wal.NewMem()
			e, err := core.OpenWith(core.Conventional(), store, dev)
			if err != nil {
				return nil, err
			}
			tbl, err := e.CreateTable("t")
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				i := i
				if err := e.Exec(func(tx *core.Txn) error {
					return tx.Insert(tbl, uint64(i), workload.U64(uint64(i)))
				}); err != nil {
					return nil, err
				}
				if useCkpt && i == n*9/10 {
					if err := e.Checkpoint(); err != nil {
						return nil, err
					}
				}
			}
			// One loser in flight at the crash.
			loser := e.Begin()
			if err := loser.Insert(tbl, uint64(n+1000), workload.U64(1)); err != nil {
				return nil, err
			}
			if err := e.Log().Flush(); err != nil {
				return nil, err
			}
			// Crash: abandon the engine without Close.
			e.Log().Close()

			start := time.Now()
			e2, err := core.OpenWith(core.Conventional(), store, dev)
			if err != nil {
				return nil, err
			}
			restart := time.Since(start)
			r := e2.RecoveryReport

			// Verify.
			tbl2, err := e2.Table("t")
			if err != nil {
				return nil, err
			}
			verified := true
			err = e2.Exec(func(tx *core.Txn) error {
				count := 0
				if err := tx.Scan(tbl2, 0, ^uint64(0), func(uint64, []byte) bool {
					count++
					return true
				}); err != nil {
					return err
				}
				verified = count == n
				return nil
			})
			if err != nil {
				return nil, err
			}
			e2.Close()
			rec.AddRow(fmt.Sprintf("%d", n),
				fmt.Sprintf("%v", useCkpt),
				fmt.Sprintf("%d", r.Scanned),
				fmt.Sprintf("%.1f", float64(restart.Microseconds())/1000),
				fmt.Sprintf("%d", r.Redone),
				fmt.Sprintf("%d", r.SkippedByLSN),
				fmt.Sprintf("%d", r.LosersUndone),
				fmt.Sprintf("%v", verified))
		}
	}
	rep.Tab = append(rep.Tab, rec)
	rep.Notes = append(rep.Notes,
		"A expected shape: with ELR, lock hold time excludes the flush wait, so hot-key throughput rises with offered concurrency instead of being pinned at 1/(sync latency)",
		"B expected shape: restart time grows linearly with the analyzed log; a fuzzy checkpoint shrinks the analysis window sharply; every committed row present, every loser row absent (verified column)")
	return rep, nil
}
