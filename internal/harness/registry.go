package harness

import "fmt"

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Report, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"e1", "TATP: conventional vs DORA", E1},
		{"e2", "log insert scalability (Aether)", E2},
		{"e3", "spin vs block critical sections", E3},
		{"e4", "TPC-B: single-thread vs scalable", E4},
		{"e5", "speculative lock inheritance", E5},
		{"e6", "CMP analytical model", E6},
		{"e7", "staged engine shared scans", E7},
		{"e8", "ELR commit path and ARIES restart", E8},
		{"e9", "ablation of the scalable constructs", E9},
		{"e10", "contention crossover: lock manager vs DORA", E10},
		{"e14", "MVCC snapshot reads vs locked reads", E14},
		{"e15", "SI writers vs locked writers vs DORA", E15},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}
