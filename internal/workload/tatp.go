package workload

import (
	"errors"
	"fmt"

	"hydra/internal/core"
	"hydra/internal/rng"
)

// TATP is the Telecom Application Transaction Processing benchmark
// (reduced): a subscriber database with a heavily skewed, short-
// transaction, read-mostly mix. It is the workload of experiment E1
// (conventional vs DORA) because its transactions touch one
// subscriber each — ideal for thread-to-data routing.
type TATP struct {
	Subscribers uint64

	Subscriber     *core.Table // s_id -> subscriber record
	AccessInfo     *core.Table // s_id*4 + ai_type -> access info
	CallForwarding *core.Table // s_id*16 + sf_type*4 + start_hour -> cf record
}

// TATP transaction type shares (per the standard mix).
const (
	tatpGetSubscriberData = 35
	tatpGetAccessData     = 35
	tatpGetNewDestination = 10
	tatpUpdateLocation    = 14
	tatpUpdateSubData     = 2
	tatpInsertCF          = 2
	tatpDeleteCF          = 2
)

// SetupTATP creates and loads the TATP tables.
func SetupTATP(e *core.Engine, subscribers uint64) (*TATP, error) {
	w := &TATP{Subscribers: subscribers}
	var err error
	if w.Subscriber, err = e.CreateTable("tatp_subscriber"); err != nil {
		return nil, err
	}
	if w.AccessInfo, err = e.CreateTable("tatp_access_info"); err != nil {
		return nil, err
	}
	if w.CallForwarding, err = e.CreateTable("tatp_call_forwarding"); err != nil {
		return nil, err
	}
	src := rng.New(7341)
	const batch = 1000
	for lo := uint64(0); lo < subscribers; lo += batch {
		hi := lo + batch
		if hi > subscribers {
			hi = subscribers
		}
		err := e.Exec(func(tx *core.Txn) error {
			for s := lo; s < hi; s++ {
				if err := tx.Insert(w.Subscriber, s, subscriberRecord(src, s)); err != nil {
					return err
				}
				// 1-4 access-info rows per subscriber.
				for ai := uint64(0); ai < uint64(src.IntRange(1, 4)); ai++ {
					if err := tx.Insert(w.AccessInfo, s*4+ai, U64(src.Uint64())); err != nil {
						return err
					}
				}
				// ~25% of subscribers have call forwarding rows.
				if src.Bool(0.25) {
					sf := uint64(src.Intn(4))
					hr := uint64(src.Intn(3))
					if err := tx.Insert(w.CallForwarding, cfKey(s, sf, hr), U64(src.Uint64())); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

func subscriberRecord(src *rng.Source, s uint64) []byte {
	rec := make([]byte, 96) // bit/hex/byte2 fields + vlr_location
	src.Bytes(rec)
	// Keep the location field (first 8 bytes) recognizable.
	copy(rec, U64(s))
	return rec
}

func cfKey(s, sfType, startHour uint64) uint64 { return s*16 + sfType*4 + startHour }

// RunOne executes one transaction drawn from the standard mix.
// Benign misses (e.g. GetNewDestination for a subscriber without
// forwarding) are not errors.
func (w *TATP) RunOne(src *rng.Source, x Executor) error {
	s := uint64(src.Intn(int(w.Subscribers)))
	roll := src.Intn(100)
	switch {
	case roll < tatpGetSubscriberData:
		return x.Run(w.Subscriber, s, func(tx *core.Txn) error {
			_, err := tx.Read(w.Subscriber, s)
			return err
		})
	case roll < tatpGetSubscriberData+tatpGetAccessData:
		ai := uint64(src.Intn(4))
		return x.Run(w.AccessInfo, s*4+ai, func(tx *core.Txn) error {
			_, err := tx.Read(w.AccessInfo, s*4+ai)
			if errors.Is(err, core.ErrNotFound) {
				return nil
			}
			return err
		})
	case roll < tatpGetSubscriberData+tatpGetAccessData+tatpGetNewDestination:
		// GetNewDestination reads the subscriber's forwarding rows for
		// one sf_type across the (bounded) start hours — the TATP
		// predicate on start_time. Row-granular reads keep the lock
		// footprint small; a table-S scan here would serialize against
		// every forwarding insert/delete.
		sf := uint64(src.Intn(4))
		lo := cfKey(s, sf, 0)
		return x.Run(w.CallForwarding, lo, func(tx *core.Txn) error {
			for hr := uint64(0); hr < 4; hr++ {
				if _, err := tx.Read(w.CallForwarding, cfKey(s, sf, hr)); err != nil &&
					!errors.Is(err, core.ErrNotFound) {
					return err
				}
			}
			return nil
		})
	case roll < 94:
		// UpdateLocation: write the subscriber's VLR location.
		loc := src.Uint64()
		return x.Run(w.Subscriber, s, func(tx *core.Txn) error {
			rec, err := tx.Read(w.Subscriber, s)
			if err != nil {
				return err
			}
			copy(rec, U64(loc))
			return tx.Update(w.Subscriber, s, rec)
		})
	case roll < 96:
		// UpdateSubscriberData: flip bit fields.
		return x.Run(w.Subscriber, s, func(tx *core.Txn) error {
			rec, err := tx.Read(w.Subscriber, s)
			if err != nil {
				return err
			}
			rec[len(rec)-1] ^= 0xFF
			return tx.Update(w.Subscriber, s, rec)
		})
	case roll < 98:
		key := cfKey(s, uint64(src.Intn(4)), uint64(src.Intn(3)))
		val := U64(src.Uint64())
		return x.Run(w.CallForwarding, key, func(tx *core.Txn) error {
			err := tx.Insert(w.CallForwarding, key, val)
			if errors.Is(err, core.ErrExists) {
				return nil // standard TATP: insert of existing row is a benign failure
			}
			return err
		})
	default:
		key := cfKey(s, uint64(src.Intn(4)), uint64(src.Intn(3)))
		return x.Run(w.CallForwarding, key, func(tx *core.Txn) error {
			err := tx.Delete(w.CallForwarding, key)
			if errors.Is(err, core.ErrNotFound) {
				return nil
			}
			return err
		})
	}
}

// Check verifies structural invariants after a run: every subscriber
// row exists and is readable.
func (w *TATP) Check(e *core.Engine) error {
	return e.Exec(func(tx *core.Txn) error {
		count := 0
		err := tx.Scan(w.Subscriber, 0, ^uint64(0), func(k uint64, v []byte) bool {
			count++
			return true
		})
		if err != nil {
			return err
		}
		if uint64(count) != w.Subscribers {
			return fmt.Errorf("tatp: %d subscribers, want %d", count, w.Subscribers)
		}
		return nil
	})
}
