// Package workload implements the OLTP benchmark kits the experiments
// drive against the storage manager: TATP (telecom), TPC-B (banking
// debit/credit), a reduced TPC-C (order entry), and a tunable
// microbenchmark. Each kit provides deterministic data loading, a
// transaction mix, and invariant checks.
//
// Transactions run through an Executor, which abstracts the two
// execution models under study: conventional thread-to-transaction
// (lock manager, optionally with SLI agents) and DORA
// thread-to-data (partitioned executors, no lock table).
package workload

import (
	"encoding/binary"
	"errors"
	"time"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/lock"
)

// Executor runs one transaction body routed by its primary key.
type Executor interface {
	// Run executes fn transactionally. tbl/key describe the dominant
	// row the transaction touches, which data-oriented executors use
	// for routing.
	Run(tbl *core.Table, key uint64, fn func(tx *core.Txn) error) error
}

// LockExecutor is the conventional model: any worker runs any
// transaction, isolation comes from the centralized lock manager.
type LockExecutor struct {
	Engine *core.Engine
	// Agent, when set, routes lock acquisition through SLI.
	Agent *lock.Agent
}

// Run implements Executor.
func (x LockExecutor) Run(_ *core.Table, _ uint64, fn func(tx *core.Txn) error) error {
	if x.Agent == nil {
		return x.Engine.Exec(fn)
	}
	// Agent path: same retry policy as Engine.Exec (capped backoff
	// with jitter between attempts) but with agent txns.
	for attempt := 0; ; attempt++ {
		t := x.Engine.BeginWithAgent(x.Agent)
		err := fn(t)
		if err == nil {
			if err = t.Commit(); err == nil {
				return nil
			}
		}
		if aerr := t.Abort(); aerr != nil && err == nil {
			err = aerr
		}
		if attempt < 10 && retryable(err) {
			time.Sleep(core.BackoffDelay(attempt))
			continue
		}
		return err
	}
}

func retryable(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) || errors.Is(err, lock.ErrTimeout)
}

// SIExecutor is the snapshot-isolation model: reads resolve against a
// pinned snapshot with zero lock-manager traffic, writes buffer and
// validate first-committer-wins at commit. Conflict victims retry
// inside ExecSI with the shared backoff.
type SIExecutor struct {
	Engine *core.Engine
}

// Run implements Executor.
func (x SIExecutor) Run(_ *core.Table, _ uint64, fn func(tx *core.Txn) error) error {
	return x.Engine.ExecSI(fn)
}

// DoraExecutor is the thread-to-data model: the transaction body is
// shipped to the executor owning the routing key.
type DoraExecutor struct {
	Engine *dora.Engine
}

// Run implements Executor.
func (x DoraExecutor) Run(tbl *core.Table, key uint64, fn func(tx *core.Txn) error) error {
	return x.Engine.ExecSingle(dora.Action{Table: tbl, Key: key, Fn: fn})
}

// U64 encodes v little-endian; the standard value codec of the kits.
func U64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// I64 encodes a signed value.
func I64(v int64) []byte { return U64(uint64(v)) }

// DecU64 decodes U64.
func DecU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// DecI64 decodes I64.
func DecI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }
