package workload

import (
	"sync"
	"testing"
	"time"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/rng"
)

func newEngine(t testing.TB) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestTATPLoadAndMix(t *testing.T) {
	e := newEngine(t)
	w, err := SetupTATP(e, 500)
	if err != nil {
		t.Fatal(err)
	}
	x := LockExecutor{Engine: e}
	src := rng.New(1)
	for i := 0; i < 2000; i++ {
		if err := w.RunOne(src, x); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if err := w.Check(e); err != nil {
		t.Fatal(err)
	}
}

func TestTATPWithDORA(t *testing.T) {
	e := newEngine(t)
	w, err := SetupTATP(e, 500)
	if err != nil {
		t.Fatal(err)
	}
	d := dora.New(e, dora.Options{Executors: 4, RouteShift: 4})
	defer d.Close()
	x := DoraExecutor{Engine: d}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(g))
			for i := 0; i < 500; i++ {
				if err := w.RunOne(src, x); err != nil {
					t.Errorf("dora txn: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Check(e); err != nil {
		t.Fatal(err)
	}
	if d.StatsSnapshot().ActionsExecuted == 0 {
		t.Fatal("no actions routed through DORA")
	}
}

func TestTATPWithSLIAgent(t *testing.T) {
	e := newEngine(t)
	w, err := SetupTATP(e, 200)
	if err != nil {
		t.Fatal(err)
	}
	agent := e.Locks().NewAgent()
	x := LockExecutor{Engine: e, Agent: agent}
	src := rng.New(3)
	for i := 0; i < 1000; i++ {
		if err := w.RunOne(src, x); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	// Retire the agent before the table-scanning invariant check: a
	// parked agent holds its inherited intent locks until its next
	// transaction boundary, and there will not be one.
	agent.Close()
	if err := w.Check(e); err != nil {
		t.Fatal(err)
	}
}

func TestTPCBConservation(t *testing.T) {
	e := newEngine(t)
	w, err := SetupTPCB(e, 2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	x := LockExecutor{Engine: e}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(100 + g))
			for i := 0; i < 200; i++ {
				if err := w.RunOne(src, x); err != nil {
					t.Errorf("tpcb txn: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Check(e); err != nil {
		t.Fatal(err)
	}
}

func TestTPCBDetectsCorruption(t *testing.T) {
	e := newEngine(t)
	w, err := SetupTPCB(e, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with one account outside the workload's bookkeeping.
	e.Exec(func(tx *core.Txn) error { return tx.Update(w.Account, 0, I64(12345)) })
	if err := w.Check(e); err == nil {
		t.Fatal("Check failed to detect imbalance")
	}
}

func TestTPCCInvariants(t *testing.T) {
	e := newEngine(t)
	w, err := SetupTPCC(e, 1, 2, 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	x := LockExecutor{Engine: e}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(200 + g))
			for i := 0; i < 100; i++ {
				if err := w.RunOne(src, x); err != nil {
					t.Errorf("tpcc txn: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Check(e); err != nil {
		t.Fatal(err)
	}
}

func TestMicroWriteConservation(t *testing.T) {
	e := newEngine(t)
	w, err := SetupMicro(e, 1000, 0.5, 0.9, 64)
	if err != nil {
		t.Fatal(err)
	}
	x := LockExecutor{Engine: e}
	const workers, per = 4, 250
	var wg sync.WaitGroup
	var writes [workers]uint64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := w.NewSampler(uint64(g))
			for i := 0; i < per; i++ {
				k := s.Next()
				if s.Src().Float64() < 0.5 {
					// Count a write we perform explicitly.
					err := x.Run(w.Table, k, func(tx *core.Txn) error {
						v, err := tx.Read(w.Table, k)
						if err != nil {
							return err
						}
						copy(v, U64(DecU64(v)+1))
						return tx.Update(w.Table, k, v)
					})
					if err != nil {
						t.Errorf("micro write: %v", err)
						return
					}
					writes[g]++
				} else {
					if err := x.Run(w.Table, k, func(tx *core.Txn) error {
						_, err := tx.Read(w.Table, k)
						return err
					}); err != nil {
						t.Errorf("micro read: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var expected uint64
	for _, c := range writes {
		expected += c
	}
	total, err := w.TotalWrites(e)
	if err != nil {
		t.Fatal(err)
	}
	if total != expected {
		t.Fatalf("writes lost: counters sum to %d, performed %d", total, expected)
	}
}

func TestMicroZipfSkewsTraffic(t *testing.T) {
	e := newEngine(t)
	w, err := SetupMicro(e, 10000, 1.0, 0.99, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := w.NewSampler(5)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		counts[s.Next()]++
	}
	if counts[0] < 500 {
		t.Fatalf("hottest key drew only %d/20000", counts[0])
	}
}

func TestMicroHotSetFocusesTraffic(t *testing.T) {
	e := newEngine(t)
	w, err := SetupMicro(e, 10000, 1.0, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	w.HotKeys = 4
	w.HotFrac = 0.8
	s := w.NewSampler(5)
	const draws = 20000
	hot := 0
	for i := 0; i < draws; i++ {
		if s.Next() < w.HotKeys {
			hot++
		}
	}
	// ~80% of draws plus the uniform tail's sliver should land hot;
	// allow generous sampling slack around the expectation.
	if frac := float64(hot) / draws; frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction = %.3f, want ~0.80", frac)
	}

	// Knob off: the hot set draws only its uniform share.
	w.HotFrac = 0
	s = w.NewSampler(7)
	hot = 0
	for i := 0; i < draws; i++ {
		if s.Next() < 4 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac > 0.01 {
		t.Fatalf("hot fraction with knob off = %.3f", frac)
	}
}

func TestCodecs(t *testing.T) {
	if DecU64(U64(42)) != 42 {
		t.Fatal("U64 round trip")
	}
	if DecI64(I64(-42)) != -42 {
		t.Fatal("I64 round trip")
	}
}

// TPC-B decomposed into DORA multi-action transactions: partition-
// local locks must preserve the money-conservation invariant under
// concurrency, with no centralized lock manager involved.
func TestTPCBViaDORAMultiAction(t *testing.T) {
	e := newEngine(t)
	w, err := SetupTPCB(e, 2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	d := dora.New(e, dora.Options{Executors: 4, LockTimeout: 200 * time.Millisecond})
	defer d.Close()
	before := e.StatsSnapshot().Lock.TableOps
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(300 + g))
			for i := 0; i < 150; i++ {
				if err := w.RunOneDora(src, d); err != nil {
					t.Errorf("dora tpcb: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Check(e); err != nil {
		t.Fatal(err)
	}
	// The run itself must not have touched the central lock table
	// (Check does, afterwards).
	if got := e.StatsSnapshot().Lock.TableOps - before; got > 50 {
		t.Fatalf("DORA run visited the central lock table %d times", got)
	}
}
