package workload

import (
	"errors"

	"hydra/internal/core"
	"hydra/internal/rng"
)

// Micro is a tunable key-value microbenchmark: N keys, a read/write
// mix, and optional zipfian skew. Experiments use it when they need a
// single knob (contention) isolated from benchmark semantics.
type Micro struct {
	Keys      uint64
	WriteFrac float64 // fraction of operations that update
	Theta     float64 // zipf exponent; 0 = uniform
	ValueSize int

	// HotKeys/HotFrac overlay a dial-a-contention hot set on the base
	// distribution: a draw lands uniformly in the first HotKeys keys
	// with probability HotFrac, and falls through to the base (zipf or
	// uniform) draw otherwise. HotFrac 0 disables the overlay. The
	// crossover experiments sweep HotFrac to find the skew where
	// thread-to-data execution overtakes the shared lock manager.
	HotKeys uint64
	HotFrac float64

	// SnapFrac routes that fraction of read operations through an MVCC
	// snapshot transaction on Engine instead of the Executor's locked
	// path. It requires core.Config.MVCC; the read-mostly crossover
	// experiment sweeps it to show lock traffic flat-lining while
	// hydra_mvcc_snapshot_reads climbs.
	SnapFrac float64

	// SIFrac routes that fraction of write operations through a
	// snapshot-isolation writer transaction (Engine.ExecSI) instead of
	// the Executor's path: snapshot read, buffered write, commit-time
	// first-committer-wins validation. Requires core.Config.MVCC. The
	// SI crossover experiment sweeps hot-set contention to measure the
	// conflict-abort rate against locked-writer throughput.
	SIFrac float64

	Engine *core.Engine
	Table  *core.Table
}

// SetupMicro creates and loads the microbenchmark table.
func SetupMicro(e *core.Engine, keys uint64, writeFrac, theta float64, valueSize int) (*Micro, error) {
	if valueSize < 8 {
		valueSize = 8
	}
	w := &Micro{Keys: keys, WriteFrac: writeFrac, Theta: theta, ValueSize: valueSize, Engine: e}
	var err error
	if w.Table, err = e.CreateTable("micro_kv"); err != nil {
		return nil, err
	}
	src := rng.New(91)
	for lo := uint64(0); lo < keys; lo += 2000 {
		hi := lo + 2000
		if hi > keys {
			hi = keys
		}
		err := e.Exec(func(tx *core.Txn) error {
			for k := lo; k < hi; k++ {
				v := make([]byte, valueSize)
				src.Bytes(v)
				copy(v, U64(0))
				if err := tx.Insert(w.Table, k, v); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Sampler draws keys for one worker; create one per goroutine.
type Sampler struct {
	src     *rng.Source
	zipf    *rng.Zipf
	keys    uint64
	hotKeys uint64
	hotFrac float64
}

// NewSampler returns a key sampler seeded per worker. It captures the
// workload's hot-set knobs, so set HotKeys/HotFrac before creating
// samplers.
func (w *Micro) NewSampler(seed uint64) *Sampler {
	src := rng.New(seed)
	s := &Sampler{src: src, keys: w.Keys, hotKeys: w.HotKeys, hotFrac: w.HotFrac}
	if s.hotKeys == 0 || s.hotKeys > w.Keys {
		s.hotKeys = w.Keys
	}
	if w.Theta > 0 {
		s.zipf = rng.NewZipf(src.Split(1), w.Keys, w.Theta)
	}
	return s
}

// Next draws a key.
func (s *Sampler) Next() uint64 {
	if s.hotFrac > 0 && s.src.Float64() < s.hotFrac {
		return uint64(s.src.Intn(int(s.hotKeys)))
	}
	if s.zipf != nil {
		return s.zipf.Next()
	}
	return uint64(s.src.Intn(int(s.keys)))
}

// Src exposes the sampler's random source for mix decisions.
func (s *Sampler) Src() *rng.Source { return s.src }

// RunOne executes one read or read-modify-write operation.
func (w *Micro) RunOne(s *Sampler, x Executor) error {
	k := s.Next()
	if s.src.Float64() >= w.WriteFrac {
		if w.SnapFrac > 0 && s.src.Float64() < w.SnapFrac {
			return w.snapshotRead(k)
		}
		return x.Run(w.Table, k, func(tx *core.Txn) error {
			_, err := tx.Read(w.Table, k)
			if errors.Is(err, core.ErrNotFound) {
				return nil
			}
			return err
		})
	}
	if w.SIFrac > 0 && s.src.Float64() < w.SIFrac {
		return w.siWrite(k)
	}
	return x.Run(w.Table, k, func(tx *core.Txn) error {
		v, err := tx.ReadForUpdate(w.Table, k)
		if err != nil {
			return err
		}
		copy(v, U64(DecU64(v)+1))
		return tx.Update(w.Table, k, v)
	})
}

// siWrite runs one read-modify-write increment as a snapshot-isolation
// writer: the read takes no locks, the update buffers, and commit
// validates first-committer-wins (ExecSI retries conflict victims). A
// conflict that survives every retry surfaces to the harness as an
// aborted operation.
func (w *Micro) siWrite(k uint64) error {
	return w.Engine.ExecSI(func(tx *core.Txn) error {
		v, err := tx.Read(w.Table, k)
		if err != nil {
			return err
		}
		copy(v, U64(DecU64(v)+1))
		return tx.Update(w.Table, k, v)
	})
}

// snapshotRead serves one read from a pinned snapshot: no lock
// manager traffic, version-chain resolution when a writer has the row
// in flight. Misses are tolerated like the locked read path.
func (w *Micro) snapshotRead(k uint64) error {
	t, err := w.Engine.BeginSnapshot()
	if err != nil {
		return err
	}
	if _, err := t.Read(w.Table, k); err != nil && !errors.Is(err, core.ErrNotFound) {
		t.Abort()
		return err
	}
	return t.Commit()
}

// TotalWrites sums the per-key write counters (the first 8 bytes of
// each value), for conservation checks.
func (w *Micro) TotalWrites(e *core.Engine) (uint64, error) {
	var total uint64
	err := e.Exec(func(tx *core.Txn) error {
		total = 0
		return tx.Scan(w.Table, 0, ^uint64(0), func(_ uint64, v []byte) bool {
			total += DecU64(v)
			return true
		})
	})
	return total, err
}
