package workload

import (
	"errors"
	"fmt"
	"sync/atomic"

	"hydra/internal/core"
	"hydra/internal/rng"
)

// TPCC is a reduced TPC-C order-entry workload implementing the two
// transactions that dominate the standard mix: NewOrder (~45%) and
// Payment (~43%), scaled down and keyed into uint64s. It exercises
// multi-table transactions with hot rows (district next-order-id
// counters), realistic for lock-contention experiments.
type TPCC struct {
	Warehouses       int
	DistrictsPerWH   int
	CustomersPerDist int
	Items            int

	Warehouse, District, Customer, Stock *core.Table
	Order, OrderLine, History            *core.Table
	// NewOrderQ holds undelivered orders: key = district<<40 | oid,
	// which makes "oldest undelivered order of a district" a range
	// scan (the TPC-C NEW-ORDER table).
	NewOrderQ *core.Table

	orderSeq   atomic.Uint64
	historySeq atomic.Uint64
}

// Key packing: composite TPC-C keys into uint64.
func (w *TPCC) wKey(wh int) uint64 { return uint64(wh) }
func (w *TPCC) dKey(wh, d int) uint64 {
	return uint64(wh)*uint64(w.DistrictsPerWH) + uint64(d)
}
func (w *TPCC) cKey(wh, d, c int) uint64 {
	return (uint64(wh)*uint64(w.DistrictsPerWH)+uint64(d))*uint64(w.CustomersPerDist) + uint64(c)
}
func (w *TPCC) sKey(wh, item int) uint64 {
	return uint64(wh)*uint64(w.Items) + uint64(item)
}

// districtRecord packs (nextOID, ytd) into 16 bytes.
func districtRecord(nextOID uint64, ytd int64) []byte {
	b := make([]byte, 16)
	copy(b, U64(nextOID))
	copy(b[8:], I64(ytd))
	return b
}

// SetupTPCC creates and loads the reduced TPC-C tables.
func SetupTPCC(e *core.Engine, warehouses, districts, customers, items int) (*TPCC, error) {
	w := &TPCC{
		Warehouses:       warehouses,
		DistrictsPerWH:   districts,
		CustomersPerDist: customers,
		Items:            items,
	}
	for _, t := range []struct {
		name string
		dst  **core.Table
	}{
		{"tpcc_warehouse", &w.Warehouse},
		{"tpcc_district", &w.District},
		{"tpcc_customer", &w.Customer},
		{"tpcc_stock", &w.Stock},
		{"tpcc_order", &w.Order},
		{"tpcc_orderline", &w.OrderLine},
		{"tpcc_history", &w.History},
		{"tpcc_neworder", &w.NewOrderQ},
	} {
		tbl, err := e.CreateTable(t.name)
		if err != nil {
			return nil, err
		}
		*t.dst = tbl
	}
	err := e.Exec(func(tx *core.Txn) error {
		for wh := 0; wh < warehouses; wh++ {
			if err := tx.Insert(w.Warehouse, w.wKey(wh), I64(0)); err != nil {
				return err
			}
			for d := 0; d < districts; d++ {
				if err := tx.Insert(w.District, w.dKey(wh, d), districtRecord(1, 0)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Customers and stock in batches.
	for wh := 0; wh < warehouses; wh++ {
		for d := 0; d < districts; d++ {
			wh, d := wh, d
			err := e.Exec(func(tx *core.Txn) error {
				for c := 0; c < customers; c++ {
					if err := tx.Insert(w.Customer, w.cKey(wh, d, c), I64(0)); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		for lo := 0; lo < items; lo += 2000 {
			hi := lo + 2000
			if hi > items {
				hi = items
			}
			wh := wh
			err := e.Exec(func(tx *core.Txn) error {
				for it := lo; it < hi; it++ {
					if err := tx.Insert(w.Stock, w.sKey(wh, it), U64(100)); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// RunOne executes one transaction drawn from the standard TPC-C mix:
// NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%,
// StockLevel 4%.
func (w *TPCC) RunOne(src *rng.Source, x Executor) error {
	roll := src.Intn(100)
	switch {
	case roll < 45:
		return w.newOrder(src, x)
	case roll < 88:
		return w.payment(src, x)
	case roll < 92:
		return w.orderStatus(src, x)
	case roll < 96:
		return w.delivery(src, x)
	default:
		return w.stockLevel(src, x)
	}
}

// newOrder reads the warehouse, bumps the district's next order id,
// inserts an order, and for 5-15 items decrements stock and inserts
// an order line.
func (w *TPCC) newOrder(src *rng.Source, x Executor) error {
	wh := src.Intn(w.Warehouses)
	d := src.Intn(w.DistrictsPerWH)
	nItems := src.IntRange(5, 15)
	items := make([]int, nItems)
	for i := range items {
		items[i] = src.Intn(w.Items)
	}
	oid := w.orderSeq.Add(1)
	dk := w.dKey(wh, d)
	return x.Run(w.District, dk, func(tx *core.Txn) error {
		drec, err := tx.Read(w.District, dk)
		if err != nil {
			return err
		}
		nextOID := DecU64(drec[:8])
		if err := tx.Update(w.District, dk, districtRecord(nextOID+1, DecI64(drec[8:16]))); err != nil {
			return err
		}
		if err := tx.Insert(w.Order, oid, U64(dk)); err != nil {
			return err
		}
		if err := tx.Insert(w.NewOrderQ, dk<<40|oid, U64(oid)); err != nil {
			return err
		}
		for i, it := range items {
			sk := w.sKey(wh, it)
			srec, err := tx.Read(w.Stock, sk)
			if err != nil {
				return err
			}
			q := DecU64(srec)
			if q < 10 {
				q += 91 // TPC-C restock rule
			}
			if err := tx.Update(w.Stock, sk, U64(q-1)); err != nil {
				return err
			}
			if err := tx.Insert(w.OrderLine, oid*16+uint64(i), U64(sk)); err != nil {
				return err
			}
		}
		return nil
	})
}

// payment updates warehouse, district, and customer YTD amounts and
// appends a history row.
func (w *TPCC) payment(src *rng.Source, x Executor) error {
	wh := src.Intn(w.Warehouses)
	d := src.Intn(w.DistrictsPerWH)
	c := src.Intn(w.CustomersPerDist)
	amount := int64(src.IntRange(1, 5000))
	hkey := w.historySeq.Add(1)
	ck := w.cKey(wh, d, c)
	dk := w.dKey(wh, d)
	return x.Run(w.Customer, ck, func(tx *core.Txn) error {
		if err := addTo(tx, w.Warehouse, w.wKey(wh), amount); err != nil {
			return err
		}
		drec, err := tx.Read(w.District, dk)
		if err != nil {
			return err
		}
		if err := tx.Update(w.District, dk,
			districtRecord(DecU64(drec[:8]), DecI64(drec[8:16])+amount)); err != nil {
			return err
		}
		if err := addTo(tx, w.Customer, ck, amount); err != nil {
			return err
		}
		return tx.Insert(w.History, hkey, I64(amount))
	})
}

// orderStatus reads a customer and, when orders exist, the most
// recently created order's record (read-only).
func (w *TPCC) orderStatus(src *rng.Source, x Executor) error {
	wh := src.Intn(w.Warehouses)
	d := src.Intn(w.DistrictsPerWH)
	c := src.Intn(w.CustomersPerDist)
	ck := w.cKey(wh, d, c)
	return x.Run(w.Customer, ck, func(tx *core.Txn) error {
		if _, err := tx.Read(w.Customer, ck); err != nil {
			return err
		}
		if last := w.orderSeq.Load(); last > 0 {
			oid := uint64(src.Intn(int(last))) + 1
			if _, err := tx.Read(w.Order, oid); err != nil && !errors.Is(err, core.ErrNotFound) {
				return err
			}
		}
		return nil
	})
}

// delivery pops the oldest undelivered order of one district and
// marks it delivered (value flipped to the delivery tag).
func (w *TPCC) delivery(src *rng.Source, x Executor) error {
	wh := src.Intn(w.Warehouses)
	d := src.Intn(w.DistrictsPerWH)
	dk := w.dKey(wh, d)
	lo := dk << 40
	hi := (dk+1)<<40 - 1
	return x.Run(w.District, dk, func(tx *core.Txn) error {
		var qkey, oid uint64
		found := false
		if err := tx.Scan(w.NewOrderQ, lo, hi, func(k uint64, v []byte) bool {
			qkey, oid, found = k, DecU64(v), true
			return false // oldest only
		}); err != nil {
			return err
		}
		if !found {
			return nil // nothing to deliver in this district
		}
		if err := tx.Delete(w.NewOrderQ, qkey); err != nil {
			return err
		}
		// Tag the order delivered: high bit set on its district field.
		return tx.Update(w.Order, oid, U64(dk|1<<63))
	})
}

// stockLevel counts recently touched stock items below a threshold
// (read-only scan).
func (w *TPCC) stockLevel(src *rng.Source, x Executor) error {
	wh := src.Intn(w.Warehouses)
	start := src.Intn(w.Items)
	lo := w.sKey(wh, start)
	threshold := uint64(src.IntRange(10, 20))
	return x.Run(w.Stock, lo, func(tx *core.Txn) error {
		n, low := 0, 0
		err := tx.Scan(w.Stock, lo, w.sKey(wh, w.Items-1), func(k uint64, v []byte) bool {
			if DecU64(v) < threshold {
				low++
			}
			n++
			return n < 20
		})
		_ = low // the benchmark exercises the read path; the count is the query's output
		return err
	})
}

// Check verifies reduced-TPC-C invariants: per-district order counts
// match next-order-id counters, every order has 5-15 lines, and
// payment YTD sums are consistent across levels.
func (w *TPCC) Check(e *core.Engine) error {
	// Orders per district == sum(nextOID - 1).
	var expectedOrders uint64
	err := e.Exec(func(tx *core.Txn) error {
		expectedOrders = 0
		return tx.Scan(w.District, 0, ^uint64(0), func(_ uint64, v []byte) bool {
			expectedOrders += DecU64(v[:8]) - 1
			return true
		})
	})
	if err != nil {
		return err
	}
	var orders uint64
	err = e.Exec(func(tx *core.Txn) error {
		orders = 0
		return tx.Scan(w.Order, 0, ^uint64(0), func(uint64, []byte) bool {
			orders++
			return true
		})
	})
	if err != nil {
		return err
	}
	if orders != expectedOrders {
		return fmt.Errorf("tpcc: %d orders but districts say %d", orders, expectedOrders)
	}
	// Undelivered queue entries must reference existing, untagged
	// orders; delivered orders must be absent from the queue.
	var queueErr error
	err = e.Exec(func(tx *core.Txn) error {
		return tx.Scan(w.NewOrderQ, 0, ^uint64(0), func(k uint64, v []byte) bool {
			oid := DecU64(v)
			ov, err := tx.Read(w.Order, oid)
			if err != nil {
				queueErr = fmt.Errorf("tpcc: queued order %d missing: %w", oid, err)
				return false
			}
			if DecU64(ov)&(1<<63) != 0 {
				queueErr = fmt.Errorf("tpcc: delivered order %d still queued", oid)
				return false
			}
			return true
		})
	})
	if err != nil {
		return err
	}
	if queueErr != nil {
		return queueErr
	}
	// Warehouse YTD == district YTD == customer YTD == history sum.
	var whYTD, distYTD, custYTD, histYTD int64
	err = e.Exec(func(tx *core.Txn) error {
		whYTD, distYTD, custYTD, histYTD = 0, 0, 0, 0
		if err := tx.Scan(w.Warehouse, 0, ^uint64(0), func(_ uint64, v []byte) bool {
			whYTD += DecI64(v)
			return true
		}); err != nil {
			return err
		}
		if err := tx.Scan(w.District, 0, ^uint64(0), func(_ uint64, v []byte) bool {
			distYTD += DecI64(v[8:16])
			return true
		}); err != nil {
			return err
		}
		if err := tx.Scan(w.Customer, 0, ^uint64(0), func(_ uint64, v []byte) bool {
			custYTD += DecI64(v)
			return true
		}); err != nil {
			return err
		}
		return tx.Scan(w.History, 0, ^uint64(0), func(_ uint64, v []byte) bool {
			histYTD += DecI64(v)
			return true
		})
	})
	if err != nil {
		return err
	}
	if whYTD != distYTD || distYTD != custYTD || custYTD != histYTD {
		return fmt.Errorf("tpcc: YTD mismatch wh=%d dist=%d cust=%d hist=%d",
			whYTD, distYTD, custYTD, histYTD)
	}
	return nil
}
