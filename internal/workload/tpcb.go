package workload

import (
	"errors"

	"fmt"
	"hydra/internal/dora"
	"sync/atomic"

	"hydra/internal/core"
	"hydra/internal/rng"
)

// TPCB is the classic debit/credit banking benchmark: every
// transaction updates one account, its teller, its branch, and
// appends a history row. Branch rows are few and hot, which makes
// TPC-B the canonical stress for lock-manager and log contention —
// experiment E4 (single-thread performance vs scalability) runs it.
type TPCB struct {
	Branches int
	// TellersPerBranch and AccountsPerBranch follow the standard
	// 1:10:100,000 scale shape, reduced.
	TellersPerBranch  int
	AccountsPerBranch int

	Branch, Teller, Account, History *core.Table
	historySeq                       atomic.Uint64
}

// SetupTPCB creates and loads the four TPC-B tables.
func SetupTPCB(e *core.Engine, branches, tellersPerBranch, accountsPerBranch int) (*TPCB, error) {
	w := &TPCB{
		Branches:          branches,
		TellersPerBranch:  tellersPerBranch,
		AccountsPerBranch: accountsPerBranch,
	}
	var err error
	if w.Branch, err = e.CreateTable("tpcb_branch"); err != nil {
		return nil, err
	}
	if w.Teller, err = e.CreateTable("tpcb_teller"); err != nil {
		return nil, err
	}
	if w.Account, err = e.CreateTable("tpcb_account"); err != nil {
		return nil, err
	}
	if w.History, err = e.CreateTable("tpcb_history"); err != nil {
		return nil, err
	}
	err = e.Exec(func(tx *core.Txn) error {
		for b := 0; b < branches; b++ {
			if err := tx.Insert(w.Branch, uint64(b), I64(0)); err != nil {
				return err
			}
			for t := 0; t < tellersPerBranch; t++ {
				if err := tx.Insert(w.Teller, w.tellerKey(b, t), I64(0)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Accounts in batches (there can be many).
	for b := 0; b < branches; b++ {
		for lo := 0; lo < accountsPerBranch; lo += 2000 {
			hi := lo + 2000
			if hi > accountsPerBranch {
				hi = accountsPerBranch
			}
			err := e.Exec(func(tx *core.Txn) error {
				for a := lo; a < hi; a++ {
					if err := tx.Insert(w.Account, w.accountKey(b, a), I64(0)); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

func (w *TPCB) tellerKey(branch, teller int) uint64 {
	return uint64(branch)*uint64(w.TellersPerBranch) + uint64(teller)
}

func (w *TPCB) accountKey(branch, account int) uint64 {
	return uint64(branch)*uint64(w.AccountsPerBranch) + uint64(account)
}

// RunOne executes one debit/credit transaction.
func (w *TPCB) RunOne(src *rng.Source, x Executor) error {
	b := src.Intn(w.Branches)
	t := src.Intn(w.TellersPerBranch)
	a := src.Intn(w.AccountsPerBranch)
	delta := int64(src.IntRange(-99999, 99999))
	hkey := w.historySeq.Add(1)
	accKey := w.accountKey(b, a)
	return x.Run(w.Account, accKey, func(tx *core.Txn) error {
		if err := addTo(tx, w.Account, accKey, delta); err != nil {
			return err
		}
		if err := addTo(tx, w.Teller, w.tellerKey(b, t), delta); err != nil {
			return err
		}
		if err := addTo(tx, w.Branch, uint64(b), delta); err != nil {
			return err
		}
		return tx.Insert(w.History, hkey, I64(delta))
	})
}

func addTo(tx *core.Txn, tbl *core.Table, key uint64, delta int64) error {
	// X up front: read-modify-write through an S lock would deadlock
	// on hot rows during the upgrade.
	v, err := tx.ReadForUpdate(tbl, key)
	if err != nil {
		return err
	}
	return tx.Update(tbl, key, I64(DecI64(v)+delta))
}

// Check verifies the TPC-B consistency condition: the sum of account
// balances equals the sum of teller balances equals the sum of branch
// balances equals the sum of history deltas.
func (w *TPCB) Check(e *core.Engine) error {
	sums := make(map[*core.Table]int64, 4)
	for _, tbl := range []*core.Table{w.Branch, w.Teller, w.Account, w.History} {
		var sum int64
		err := e.Exec(func(tx *core.Txn) error {
			sum = 0
			return tx.Scan(tbl, 0, ^uint64(0), func(_ uint64, v []byte) bool {
				sum += DecI64(v)
				return true
			})
		})
		if err != nil {
			return err
		}
		sums[tbl] = sum
	}
	if sums[w.Branch] != sums[w.Teller] || sums[w.Teller] != sums[w.Account] || sums[w.Account] != sums[w.History] {
		return fmt.Errorf("tpcb: balance mismatch: branch=%d teller=%d account=%d history=%d",
			sums[w.Branch], sums[w.Teller], sums[w.Account], sums[w.History])
	}
	return nil
}

// RunOneDora executes one debit/credit transaction as a DORA
// multi-action transaction: the account, teller, branch, and history
// mutations each run on the executor owning their key, in a single
// phase, serialized by the executors' partition-local locks. Lock
// timeouts (rare cross-partition deadlocks) are retried.
func (w *TPCB) RunOneDora(src *rng.Source, d *dora.Engine) error {
	for attempt := 0; ; attempt++ {
		b := src.Intn(w.Branches)
		t := src.Intn(w.TellersPerBranch)
		a := src.Intn(w.AccountsPerBranch)
		delta := int64(src.IntRange(-99999, 99999))
		hkey := w.historySeq.Add(1)
		accKey := w.accountKey(b, a)
		telKey := w.tellerKey(b, t)
		brKey := uint64(b)
		err := d.Exec([]dora.Phase{{
			{Table: w.Account, Key: accKey, Fn: func(tx *core.Txn) error {
				return addTo(tx, w.Account, accKey, delta)
			}},
			{Table: w.Teller, Key: telKey, Fn: func(tx *core.Txn) error {
				return addTo(tx, w.Teller, telKey, delta)
			}},
			{Table: w.Branch, Key: brKey, Fn: func(tx *core.Txn) error {
				return addTo(tx, w.Branch, brKey, delta)
			}},
			{Table: w.History, Key: hkey, Fn: func(tx *core.Txn) error {
				return tx.Insert(w.History, hkey, I64(delta))
			}},
		}})
		if errors.Is(err, dora.ErrTimeout) && attempt < 10 {
			continue
		}
		return err
	}
}
