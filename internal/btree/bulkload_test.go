package btree

import (
	"errors"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/rng"
)

func bulkPool() *buffer.Pool {
	return buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 4096, Shards: 8})
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(bulkPool(), Crabbing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatal("empty bulk tree returned a value")
	}
	if err := tr.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadSizes(t *testing.T) {
	// Cover single leaf, multi leaf, and multi level.
	for _, n := range []int{1, 10, 508, 509, 510, 5000, 300000} {
		n := n
		pairs := make([]KV, n)
		for i := range pairs {
			pairs[i] = KV{Key: uint64(i * 3), Value: uint64(i)}
		}
		tr, err := BulkLoad(bulkPool(), Crabbing, pairs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c, _ := tr.Count(); c != n {
			t.Fatalf("n=%d: Count = %d", n, c)
		}
		// Spot lookups, including both ends.
		step := n/7 + 1
		for i := 0; i < n; i += step {
			v, err := tr.Get(uint64(i * 3))
			if err != nil || v != uint64(i) {
				t.Fatalf("n=%d Get(%d) = %d, %v", n, i*3, v, err)
			}
		}
		if _, err := tr.Get(1); !errors.Is(err, ErrNotFound) {
			t.Fatalf("n=%d: absent key found", n)
		}
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	if _, err := BulkLoad(bulkPool(), Coarse, []KV{{5, 0}, {3, 0}}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := BulkLoad(bulkPool(), Coarse, []KV{{5, 0}, {5, 1}}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	pairs := make([]KV, 10000)
	for i := range pairs {
		pairs[i] = KV{Key: uint64(i * 2), Value: uint64(i)}
	}
	tr, err := BulkLoad(bulkPool(), Crabbing, pairs)
	if err != nil {
		t.Fatal(err)
	}
	// Inserts into the packed tree (splits must work).
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(uint64(i*2+1), 999); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes.
	for i := 0; i < 1000; i++ {
		if err := tr.Delete(uint64(i * 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c, _ := tr.Count(); c != 10000+3000-1000 {
		t.Fatalf("Count = %d", c)
	}
}

func TestBulkLoadScanOrdered(t *testing.T) {
	src := rng.New(5)
	pairs := make([]KV, 20000)
	seen := map[uint64]bool{}
	for i := range pairs {
		k := src.Uint64() % 1_000_000
		for seen[k] {
			k = src.Uint64() % 1_000_000
		}
		seen[k] = true
		pairs[i] = KV{Key: k, Value: k + 1}
	}
	SortKVs(pairs)
	tr, err := BulkLoad(bulkPool(), Coarse, pairs)
	if err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	n := 0
	tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if int64(k) <= last || v != k+1 {
			t.Fatalf("scan out of order or wrong value at %d", k)
		}
		last = int64(k)
		n++
		return true
	})
	if n != len(pairs) {
		t.Fatalf("scan saw %d of %d", n, len(pairs))
	}
}

func BenchmarkBulkLoadVsInserts(b *testing.B) {
	const n = 100000
	pairs := make([]KV, n)
	for i := range pairs {
		pairs[i] = KV{Key: uint64(i), Value: uint64(i)}
	}
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BulkLoad(bulkPool(), Coarse, pairs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inserts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, _ := Create(bulkPool(), Coarse)
			for _, kv := range pairs {
				tr.Insert(kv.Key, kv.Value)
			}
		}
	})
}
