package btree

import (
	"errors"
	"fmt"
	"sync"

	"hydra/internal/buffer"
	"hydra/internal/latch"
	"hydra/internal/obs"
	"hydra/internal/page"
)

// Mode selects the tree's concurrency discipline.
type Mode int

const (
	// Coarse serializes writers behind one tree lock; readers share
	// it. The conventional low-overhead design: fastest at one
	// thread, collapses under write concurrency.
	Coarse Mode = iota
	// Crabbing uses latch coupling: a descent holds at most the
	// latches on the unsafe suffix of its path, so operations on
	// different subtrees proceed in parallel.
	Crabbing
)

func (m Mode) String() string {
	if m == Coarse {
		return "coarse"
	}
	return "crabbing"
}

// ErrNotFound is returned by Get and Delete for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// Tree is a B+-tree over a buffer pool.
type Tree struct {
	pool *buffer.Pool
	mode Mode

	// coarse is the tree-wide lock used in Coarse mode.
	//hydra:vet:coarse -- Coarse mode holds the tree lock across page IO by definition; it is the paper's conventional baseline
	coarse sync.RWMutex
	// rootMu guards the root pointer; in Crabbing mode it is held
	// shared for the duration of each operation so the exclusive
	// fallback (root split) can exclude all traffic.
	//hydra:vet:coarse -- held for a whole tree operation (including page fetches) so root splits can exclude traffic
	rootMu sync.RWMutex
	root   page.ID
}

// Create allocates an empty tree (a single empty leaf).
func Create(pool *buffer.Pool, mode Mode) (*Tree, error) {
	f, err := pool.NewPage(page.TypeBTreeLeaf)
	if err != nil {
		return nil, err
	}
	root := f.ID()
	pool.Unpin(f, true)
	return &Tree{pool: pool, mode: mode, root: root}, nil
}

// Open attaches to an existing tree rooted at root.
func Open(pool *buffer.Pool, root page.ID, mode Mode) *Tree {
	return &Tree{pool: pool, mode: mode, root: root}
}

// RootID returns the current root page id (persist it in the catalog).
func (t *Tree) RootID() page.ID {
	if t.mode == Coarse {
		t.coarse.RLock()
		defer t.coarse.RUnlock()
		return t.root
	}
	t.rootMu.RLock()
	defer t.rootMu.RUnlock()
	return t.root
}

// lockCoarseR takes the tree-wide lock shared, attributing contended
// acquisition to the clock's latch-wait phase: in Coarse mode this
// lock IS the conventional design's serialization point, so its wait
// must show up in the per-transaction breakdown.
//
//hydra:vet:nonpropagating -- returns holding the tree lock for the caller's operation
func lockCoarseR(mu *sync.RWMutex, c *obs.PhaseClock) {
	if c == nil || mu.TryRLock() {
		if c == nil {
			mu.RLock()
		}
		return
	}
	t0 := obs.Now()
	mu.RLock()
	c.Add(obs.PhaseLatchWait, obs.Now()-t0)
}

// lockCoarseW is lockCoarseR for exclusive acquisition.
//
//hydra:vet:nonpropagating -- returns holding the tree lock for the caller's operation
func lockCoarseW(mu *sync.RWMutex, c *obs.PhaseClock) {
	if c == nil || mu.TryLock() {
		if c == nil {
			mu.Lock()
		}
		return
	}
	t0 := obs.Now()
	mu.Lock()
	c.Add(obs.PhaseLatchWait, obs.Now()-t0)
}

// Get returns the value stored under key.
func (t *Tree) Get(key uint64) (uint64, error) { return t.GetC(key, nil) }

// GetC is Get with a phase clock: latch and tree-lock waits feed the
// latch-wait phase, buffer misses the buffer-miss phase.
func (t *Tree) GetC(key uint64, c *obs.PhaseClock) (uint64, error) {
	if t.mode == Coarse {
		lockCoarseR(&t.coarse, c)
		defer t.coarse.RUnlock()
		return t.getUnlatched(key, c)
	}
	return t.getCrabbing(key, c)
}

func (t *Tree) getUnlatched(key uint64, c *obs.PhaseClock) (uint64, error) {
	id := t.root
	for {
		f, err := t.pool.FetchC(id, c)
		if err != nil {
			return 0, err
		}
		n := node{f.Page}
		if n.isLeaf() {
			pos, ok := n.leafSearch(key)
			var v uint64
			if ok {
				v = n.leafVal(pos)
			}
			t.pool.Unpin(f, false)
			if !ok {
				return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
			}
			return v, nil
		}
		id, _ = n.innerSearch(key)
		t.pool.Unpin(f, false)
	}
}

func (t *Tree) getCrabbing(key uint64, c *obs.PhaseClock) (uint64, error) {
	t.rootMu.RLock()
	defer t.rootMu.RUnlock()
	f, err := t.pool.FetchC(t.root, c)
	if err != nil {
		return 0, err
	}
	f.Latch.AcquireC(latch.Shared, c)
	for {
		n := node{f.Page}
		if n.isLeaf() {
			pos, ok := n.leafSearch(key)
			var v uint64
			if ok {
				v = n.leafVal(pos)
			}
			f.Latch.Release(latch.Shared)
			t.pool.Unpin(f, false)
			if !ok {
				return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
			}
			return v, nil
		}
		childID, _ := n.innerSearch(key)
		cf, err := t.pool.FetchC(childID, c)
		if err != nil {
			f.Latch.Release(latch.Shared)
			t.pool.Unpin(f, false)
			return 0, err
		}
		cf.Latch.AcquireC(latch.Shared, c)
		f.Latch.Release(latch.Shared)
		t.pool.Unpin(f, false)
		f = cf
	}
}

// Insert stores (key, value), replacing any existing value (upsert).
func (t *Tree) Insert(key, value uint64) error { return t.InsertC(key, value, nil) }

// InsertC is Insert with a phase clock (see GetC).
func (t *Tree) InsertC(key, value uint64, c *obs.PhaseClock) error {
	if t.mode == Coarse {
		lockCoarseW(&t.coarse, c)
		defer t.coarse.Unlock()
		return t.insertExclusive(key, value, c)
	}
	for {
		done, err := t.insertCrabbing(key, value, c)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// Root was full: take the tree exclusively, split it, retry.
		t.rootMu.Lock()
		err = t.splitRootIfFull(c)
		t.rootMu.Unlock()
		if err != nil {
			return err
		}
	}
}

// insertCrabbing attempts a latch-coupled insert. It reports
// done=false (without inserting) when the root is full and must be
// split by the exclusive path first.
func (t *Tree) insertCrabbing(key, value uint64, c *obs.PhaseClock) (bool, error) {
	t.rootMu.RLock()
	defer t.rootMu.RUnlock()

	var path []*buffer.Frame // X-latched, pinned, unsafe suffix
	releaseAll := func() {
		for _, pf := range path {
			pf.Latch.Release(latch.Exclusive)
			t.pool.Unpin(pf, true) // conservatively dirty: they may have been modified
		}
		path = nil
	}

	f, err := t.pool.FetchC(t.root, c)
	if err != nil {
		return false, err
	}
	f.Latch.AcquireC(latch.Exclusive, c)
	if full(node{f.Page}) {
		f.Latch.Release(latch.Exclusive)
		t.pool.Unpin(f, false)
		return false, nil // exclusive path must split the root
	}
	path = append(path, f)

	for {
		n := node{f.Page}
		if n.isLeaf() {
			break
		}
		childID, _ := n.innerSearch(key)
		cf, err := t.pool.FetchC(childID, c)
		if err != nil {
			releaseAll()
			return false, err
		}
		cf.Latch.AcquireC(latch.Exclusive, c)
		if !full(node{cf.Page}) {
			// Child is split-safe: ancestors can go.
			releaseAll()
		}
		path = append(path, cf)
		f = cf
	}

	// Leaf insert, with splits propagating through the retained path.
	leaf := node{f.Page}
	pos, ok := leaf.leafSearch(key)
	if ok {
		leaf.setLeafEntry(pos, key, value)
		releaseAll()
		return true, nil
	}
	if leaf.count() < LeafCap {
		leaf.leafInsertAt(pos, key, value)
		releaseAll()
		return true, nil
	}
	// Split the leaf and bubble the separator up the retained path.
	sep, newID, err := t.leafSplitInsert(leaf, key, value, c)
	if err != nil {
		releaseAll()
		return false, err
	}
	for i := len(path) - 2; i >= 0; i-- {
		parent := node{path[i].Page}
		if parent.count() < InnerCap {
			kpos := innerInsertPos(parent, sep)
			parent.innerInsertAt(kpos, sep, newID)
			releaseAll()
			return true, nil
		}
		sep, newID, err = t.innerSplitInsert(parent, sep, newID, c)
		if err != nil {
			releaseAll()
			return false, err
		}
	}
	// The retained path's top was not full by construction (the root
	// was checked and unsafe ancestors always have a safe node above
	// them on the path), so propagation cannot fall off the top.
	releaseAll()
	return false, fmt.Errorf("btree: split propagated past retained path (corrupt tree)")
}

// splitRootIfFull preemptively splits a full root under the exclusive
// tree lock.
func (t *Tree) splitRootIfFull(c *obs.PhaseClock) error {
	f, err := t.pool.FetchC(t.root, c)
	if err != nil {
		return err
	}
	n := node{f.Page}
	if !full(n) {
		t.pool.Unpin(f, false)
		return nil
	}
	var sep uint64
	var newID page.ID
	if n.isLeaf() {
		sep, newID, err = t.leafSplit(n, c)
	} else {
		sep, newID, err = t.innerSplit(n, c)
	}
	if err != nil {
		t.pool.Unpin(f, false)
		return err
	}
	rf, err := t.pool.NewPageC(page.TypeBTreeInner, c)
	if err != nil {
		t.pool.Unpin(f, true)
		return err
	}
	rn := node{rf.Page}
	rn.setChild0(t.root)
	rn.innerInsertAt(0, sep, newID)
	t.root = rf.ID()
	t.pool.Unpin(rf, true)
	t.pool.Unpin(f, true)
	return nil
}

// insertExclusive is the Coarse-mode insert: top-down preemptive
// splitting under the tree-wide writer lock, no latches.
func (t *Tree) insertExclusive(key, value uint64, c *obs.PhaseClock) error {
	if err := t.splitRootIfFullLocked(c); err != nil {
		return err
	}
	id := t.root
	for {
		f, err := t.pool.FetchC(id, c)
		if err != nil {
			return err
		}
		n := node{f.Page}
		if n.isLeaf() {
			pos, ok := n.leafSearch(key)
			if ok {
				n.setLeafEntry(pos, key, value)
			} else {
				n.leafInsertAt(pos, key, value)
			}
			t.pool.Unpin(f, true)
			return nil
		}
		childID, _ := n.innerSearch(key)
		cf, err := t.pool.FetchC(childID, c)
		if err != nil {
			t.pool.Unpin(f, false)
			return err
		}
		cn := node{cf.Page}
		if full(cn) {
			var sep uint64
			var newID page.ID
			if cn.isLeaf() {
				sep, newID, err = t.leafSplit(cn, c)
			} else {
				sep, newID, err = t.innerSplit(cn, c)
			}
			if err != nil {
				t.pool.Unpin(cf, false)
				t.pool.Unpin(f, false)
				return err
			}
			kpos := innerInsertPos(n, sep)
			n.innerInsertAt(kpos, sep, newID)
			t.pool.Unpin(cf, true)
			t.pool.Unpin(f, true)
			// Re-descend from the same inner node via search.
			if key >= sep {
				id = newID
			} else {
				id = childID
			}
			continue
		}
		t.pool.Unpin(f, false)
		t.pool.Unpin(cf, false) // re-fetched below; keeps pin discipline simple
		id = childID
	}
}

func (t *Tree) splitRootIfFullLocked(c *obs.PhaseClock) error {
	// Same as splitRootIfFull; Coarse mode's writer lock already
	// excludes all other traffic.
	return t.splitRootIfFull(c)
}

// Delete removes key. In the tradition of many production trees,
// underflowing nodes are not rebalanced; empty leaves are left in
// place and reclaimed on reorganization.
func (t *Tree) Delete(key uint64) error { return t.DeleteC(key, nil) }

// DeleteC is Delete with a phase clock (see GetC).
func (t *Tree) DeleteC(key uint64, c *obs.PhaseClock) error {
	if t.mode == Coarse {
		lockCoarseW(&t.coarse, c)
		defer t.coarse.Unlock()
		return t.deleteUnlatched(key, c)
	}
	return t.deleteCrabbing(key, c)
}

func (t *Tree) deleteUnlatched(key uint64, c *obs.PhaseClock) error {
	id := t.root
	for {
		f, err := t.pool.FetchC(id, c)
		if err != nil {
			return err
		}
		n := node{f.Page}
		if n.isLeaf() {
			pos, ok := n.leafSearch(key)
			if !ok {
				t.pool.Unpin(f, false)
				return fmt.Errorf("%w: %d", ErrNotFound, key)
			}
			n.leafDeleteAt(pos)
			t.pool.Unpin(f, true)
			return nil
		}
		id, _ = n.innerSearch(key)
		t.pool.Unpin(f, false)
	}
}

func (t *Tree) deleteCrabbing(key uint64, c *obs.PhaseClock) error {
	// Deletes never modify ancestors (no rebalancing), so plain latch
	// coupling with immediate parent release suffices.
	t.rootMu.RLock()
	defer t.rootMu.RUnlock()
	f, err := t.pool.FetchC(t.root, c)
	if err != nil {
		return err
	}
	f.Latch.AcquireC(latch.Exclusive, c)
	for {
		n := node{f.Page}
		if n.isLeaf() {
			pos, ok := n.leafSearch(key)
			if ok {
				n.leafDeleteAt(pos)
			}
			f.Latch.Release(latch.Exclusive)
			t.pool.Unpin(f, ok)
			if !ok {
				return fmt.Errorf("%w: %d", ErrNotFound, key)
			}
			return nil
		}
		childID, _ := n.innerSearch(key)
		cf, err := t.pool.FetchC(childID, c)
		if err != nil {
			f.Latch.Release(latch.Exclusive)
			t.pool.Unpin(f, false)
			return err
		}
		cf.Latch.AcquireC(latch.Exclusive, c)
		f.Latch.Release(latch.Exclusive)
		t.pool.Unpin(f, false)
		f = cf
	}
}

// Scan calls fn for every (key, value) with lo <= key <= hi in
// ascending order; fn returning false stops the scan.
func (t *Tree) Scan(lo, hi uint64, fn func(key, value uint64) bool) error {
	return t.ScanC(lo, hi, nil, fn)
}

// ScanC is Scan with a phase clock (see GetC).
func (t *Tree) ScanC(lo, hi uint64, c *obs.PhaseClock, fn func(key, value uint64) bool) error {
	if t.mode == Coarse {
		lockCoarseR(&t.coarse, c)
		defer t.coarse.RUnlock()
	} else {
		t.rootMu.RLock()
		defer t.rootMu.RUnlock()
	}
	latched := t.mode == Crabbing

	// Descend to the leaf containing lo.
	f, err := t.pool.FetchC(t.root, c)
	if err != nil {
		return err
	}
	if latched {
		f.Latch.AcquireC(latch.Shared, c)
	}
	for {
		n := node{f.Page}
		if n.isLeaf() {
			break
		}
		childID, _ := n.innerSearch(lo)
		cf, err := t.pool.FetchC(childID, c)
		if err != nil {
			if latched {
				f.Latch.Release(latch.Shared)
			}
			t.pool.Unpin(f, false)
			return err
		}
		if latched {
			cf.Latch.AcquireC(latch.Shared, c)
			f.Latch.Release(latch.Shared)
		}
		t.pool.Unpin(f, false)
		f = cf
	}
	// Walk leaves via sibling links.
	for {
		n := node{f.Page}
		pos, _ := n.leafSearch(lo)
		for ; pos < n.count(); pos++ {
			k := n.leafKey(pos)
			if k > hi {
				if latched {
					f.Latch.Release(latch.Shared)
				}
				t.pool.Unpin(f, false)
				return nil
			}
			if !fn(k, n.leafVal(pos)) {
				if latched {
					f.Latch.Release(latch.Shared)
				}
				t.pool.Unpin(f, false)
				return nil
			}
		}
		next := n.p.Next()
		if next == page.InvalidID {
			if latched {
				f.Latch.Release(latch.Shared)
			}
			t.pool.Unpin(f, false)
			return nil
		}
		nf, err := t.pool.FetchC(next, c)
		if err != nil {
			if latched {
				f.Latch.Release(latch.Shared)
			}
			t.pool.Unpin(f, false)
			return err
		}
		if latched {
			nf.Latch.AcquireC(latch.Shared, c)
			f.Latch.Release(latch.Shared)
		}
		t.pool.Unpin(f, false)
		f = nf
		lo = 0 // continue from the start of the next leaf
	}
}

// full reports whether a node cannot absorb one more entry.
func full(n node) bool {
	if n.isLeaf() {
		return n.count() >= LeafCap
	}
	return n.count() >= InnerCap
}

// innerInsertPos returns the key position where sep belongs.
func innerInsertPos(n node, sep uint64) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.innerKey(mid) < sep {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafSplit moves the upper half of n into a fresh leaf, returning
// the separator (first key of the new leaf) and its page id.
func (t *Tree) leafSplit(n node, c *obs.PhaseClock) (uint64, page.ID, error) {
	rf, err := t.pool.NewPageC(page.TypeBTreeLeaf, c)
	if err != nil {
		return 0, 0, err
	}
	r := node{rf.Page}
	mid := n.count() / 2
	moved := n.count() - mid
	copy(r.body()[:moved*entrySize], n.body()[mid*entrySize:n.count()*entrySize])
	r.setCount(moved)
	n.setCount(mid)
	r.p.SetNext(n.p.Next())
	n.p.SetNext(rf.ID())
	sep := r.leafKey(0)
	id := rf.ID()
	t.pool.Unpin(rf, true)
	return sep, id, nil
}

// leafSplitInsert splits n and then inserts (key, value) into the
// correct half, returning the separator and new page id.
func (t *Tree) leafSplitInsert(n node, key, value uint64, c *obs.PhaseClock) (uint64, page.ID, error) {
	rf, err := t.pool.NewPageC(page.TypeBTreeLeaf, c)
	if err != nil {
		return 0, 0, err
	}
	r := node{rf.Page}
	mid := n.count() / 2
	moved := n.count() - mid
	copy(r.body()[:moved*entrySize], n.body()[mid*entrySize:n.count()*entrySize])
	r.setCount(moved)
	n.setCount(mid)
	r.p.SetNext(n.p.Next())
	n.p.SetNext(rf.ID())
	sep := r.leafKey(0)
	if key >= sep {
		pos, _ := r.leafSearch(key)
		r.leafInsertAt(pos, key, value)
	} else {
		pos, _ := n.leafSearch(key)
		n.leafInsertAt(pos, key, value)
	}
	id := rf.ID()
	t.pool.Unpin(rf, true)
	return sep, id, nil
}

// innerSplit splits a full interior node, returning the key promoted
// to the parent and the new right node's id.
func (t *Tree) innerSplit(n node, c *obs.PhaseClock) (uint64, page.ID, error) {
	rf, err := t.pool.NewPageC(page.TypeBTreeInner, c)
	if err != nil {
		return 0, 0, err
	}
	r := node{rf.Page}
	mid := n.count() / 2
	sep := n.innerKey(mid)
	r.setChild0(n.innerChild(mid))
	moved := n.count() - mid - 1
	copy(r.body()[8:8+moved*entrySize], n.body()[8+(mid+1)*entrySize:8+n.count()*entrySize])
	r.setCount(moved)
	n.setCount(mid)
	id := rf.ID()
	t.pool.Unpin(rf, true)
	return sep, id, nil
}

// innerSplitInsert splits n and inserts (sep, child) into the proper
// half, returning the promoted key and new node id.
func (t *Tree) innerSplitInsert(n node, sep uint64, child page.ID, c *obs.PhaseClock) (uint64, page.ID, error) {
	promoted, newID, err := t.innerSplit(n, c)
	if err != nil {
		return 0, 0, err
	}
	var target node
	var tf *buffer.Frame
	if sep >= promoted {
		f, err := t.pool.FetchC(newID, c)
		if err != nil {
			return 0, 0, err
		}
		tf, target = f, node{f.Page}
	} else {
		target = n
	}
	kpos := innerInsertPos(target, sep)
	target.innerInsertAt(kpos, sep, child)
	if tf != nil {
		t.pool.Unpin(tf, true)
	}
	return promoted, newID, nil
}

// Count returns the number of keys (full scan).
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Scan(0, ^uint64(0), func(uint64, uint64) bool { n++; return true })
	return n, err
}

// CheckInvariants walks the whole tree verifying ordering, separator
// bounds, and sibling linkage; used by tests.
func (t *Tree) CheckInvariants() error {
	t.rootMu.RLock()
	root := t.root
	t.rootMu.RUnlock()
	_, _, err := t.check(root, 0, ^uint64(0))
	return err
}

// check verifies the subtree at id covers [lo, hi) and returns its
// first and last keys.
func (t *Tree) check(id page.ID, lo, hi uint64) (uint64, uint64, error) {
	f, err := t.pool.Fetch(id)
	if err != nil {
		return 0, 0, err
	}
	defer t.pool.Unpin(f, false)
	n := node{f.Page}
	if n.isLeaf() {
		var prev uint64
		for i := 0; i < n.count(); i++ {
			k := n.leafKey(i)
			if i > 0 && k <= prev {
				return 0, 0, fmt.Errorf("btree: leaf %d keys out of order at %d", id, i)
			}
			if k < lo || (hi != ^uint64(0) && k >= hi) {
				return 0, 0, fmt.Errorf("btree: leaf %d key %d outside [%d, %d)", id, k, lo, hi)
			}
			prev = k
		}
		if n.count() == 0 {
			return lo, lo, nil
		}
		return n.leafKey(0), n.leafKey(n.count() - 1), nil
	}
	childLo := lo
	for i := -1; i < n.count(); i++ {
		var child page.ID
		var childHi uint64
		if i == -1 {
			child = n.child0()
		} else {
			child = n.innerChild(i)
			childLo = n.innerKey(i)
		}
		if i+1 < n.count() {
			childHi = n.innerKey(i + 1)
		} else {
			childHi = hi
		}
		if _, _, err := t.check(child, childLo, childHi); err != nil {
			return 0, 0, err
		}
	}
	return lo, hi, nil
}
