// Package btree implements a B+-tree keyed by uint64 with uint64
// values (packed record ids), stored in buffer-pool pages. Two
// concurrency disciplines are provided: a coarse tree lock (the
// conventional single-threaded-Atlas design) and latch crabbing
// (latch coupling), the scalable discipline where a descent releases
// ancestor latches as soon as the child is split-safe.
package btree

import (
	"encoding/binary"

	"hydra/internal/page"
)

// Node layouts (offsets relative to page.HeaderSize):
//
// Leaf (page.TypeBTreeLeaf):
//
//	entry i at 16*i: key uint64, value uint64; page.SlotCount = n;
//	page.Next = right sibling.
//
// Inner (page.TypeBTreeInner):
//
//	bytes 0..8: child0 (page id for keys < key 0)
//	entry i at 8+16*i: key uint64, child uint64 (subtree for keys
//	>= key i and < key i+1); page.SlotCount = number of keys.
const (
	entrySize = 16
	// LeafCap is the maximum number of (key, value) pairs per leaf.
	LeafCap = (page.Size - page.HeaderSize) / entrySize
	// InnerCap is the maximum number of keys per interior node (it
	// has InnerCap+1 children).
	InnerCap = (page.Size - page.HeaderSize - 8) / entrySize
)

// node wraps a page with typed accessors. It carries no state of its
// own, so it is copied freely.
type node struct {
	p *page.Page
}

func (n node) isLeaf() bool { return n.p.Type() == page.TypeBTreeLeaf }
func (n node) count() int   { return n.p.SlotCount() }

func (n node) setCount(c int) {
	// SlotCount doubles as the entry count for tree nodes.
	b := n.p.Bytes()
	binary.LittleEndian.PutUint16(b[18:20], uint16(c))
}

func (n node) body() []byte { return n.p.Bytes()[page.HeaderSize:] }

// Leaf accessors.

func (n node) leafKey(i int) uint64 {
	return binary.LittleEndian.Uint64(n.body()[i*entrySize:])
}

func (n node) leafVal(i int) uint64 {
	return binary.LittleEndian.Uint64(n.body()[i*entrySize+8:])
}

func (n node) setLeafEntry(i int, key, val uint64) {
	b := n.body()[i*entrySize:]
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], val)
}

// leafSearch returns the position of key, or (insertion point, false).
func (n node) leafSearch(key uint64) (int, bool) {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		switch k := n.leafKey(mid); {
		case k == key:
			return mid, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// leafInsertAt shifts entries right and writes the new pair at pos.
func (n node) leafInsertAt(pos int, key, val uint64) {
	b := n.body()
	c := n.count()
	copy(b[(pos+1)*entrySize:(c+1)*entrySize], b[pos*entrySize:c*entrySize])
	n.setLeafEntry(pos, key, val)
	n.setCount(c + 1)
}

// leafDeleteAt removes the entry at pos.
func (n node) leafDeleteAt(pos int) {
	b := n.body()
	c := n.count()
	copy(b[pos*entrySize:], b[(pos+1)*entrySize:c*entrySize])
	n.setCount(c - 1)
}

// Inner accessors.

func (n node) child0() page.ID {
	return page.ID(binary.LittleEndian.Uint64(n.body()))
}

func (n node) setChild0(id page.ID) {
	binary.LittleEndian.PutUint64(n.body(), uint64(id))
}

func (n node) innerKey(i int) uint64 {
	return binary.LittleEndian.Uint64(n.body()[8+i*entrySize:])
}

func (n node) innerChild(i int) page.ID {
	return page.ID(binary.LittleEndian.Uint64(n.body()[8+i*entrySize+8:]))
}

func (n node) setInnerEntry(i int, key uint64, child page.ID) {
	b := n.body()[8+i*entrySize:]
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], uint64(child))
}

// innerSearch returns the child page to descend into for key, and the
// index of that child (-1 for child0).
func (n node) innerSearch(key uint64) (page.ID, int) {
	// Find the largest i with innerKey(i) <= key.
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.innerKey(mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return n.child0(), -1
	}
	return n.innerChild(lo - 1), lo - 1
}

// innerInsertAt inserts (key, child) at key position pos.
func (n node) innerInsertAt(pos int, key uint64, child page.ID) {
	b := n.body()
	c := n.count()
	copy(b[8+(pos+1)*entrySize:8+(c+1)*entrySize], b[8+pos*entrySize:8+c*entrySize])
	n.setInnerEntry(pos, key, child)
	n.setCount(c + 1)
}
