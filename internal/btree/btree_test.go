package btree

import (
	"errors"
	"sync"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/rng"
)

func newTree(t testing.TB, mode Mode) *Tree {
	t.Helper()
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 512, Shards: 8})
	tr, err := Create(pool, mode)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func modes() []Mode { return []Mode{Coarse, Crabbing} }

func TestInsertGetSmall(t *testing.T) {
	for _, m := range modes() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			tr := newTree(t, m)
			for i := uint64(0); i < 100; i++ {
				if err := tr.Insert(i*7, i); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(0); i < 100; i++ {
				v, err := tr.Get(i * 7)
				if err != nil || v != i {
					t.Fatalf("Get(%d) = %d, %v", i*7, v, err)
				}
			}
			if _, err := tr.Get(1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing key: %v", err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUpsertReplaces(t *testing.T) {
	for _, m := range modes() {
		tr := newTree(t, m)
		tr.Insert(5, 1)
		tr.Insert(5, 2)
		v, err := tr.Get(5)
		if err != nil || v != 2 {
			t.Fatalf("%v: upsert Get = %d, %v", m, v, err)
		}
		if n, _ := tr.Count(); n != 1 {
			t.Fatalf("%v: Count = %d after upsert", m, n)
		}
	}
}

func TestSplitsManyKeys(t *testing.T) {
	for _, m := range modes() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			tr := newTree(t, m)
			// Enough keys to force multi-level splits (LeafCap=509).
			const n = 20000
			for i := uint64(0); i < n; i++ {
				// Insert in a shuffled-ish order to exercise both halves.
				k := (i * 2654435761) % (n * 4)
				if err := tr.Insert(k, i); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < n; i++ {
				k := (i * 2654435761) % (n * 4)
				if _, err := tr.Get(k); err != nil {
					t.Fatalf("Get(%d) after splits: %v", k, err)
				}
			}
		})
	}
}

func TestSequentialInsertAscending(t *testing.T) {
	tr := newTree(t, Crabbing)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c, _ := tr.Count(); c != n {
		t.Fatalf("Count = %d, want %d", c, n)
	}
}

func TestSequentialInsertDescending(t *testing.T) {
	tr := newTree(t, Crabbing)
	const n = 5000
	for i := int64(n - 1); i >= 0; i-- {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c, _ := tr.Count(); c != n {
		t.Fatalf("Count = %d", c)
	}
}

func TestDelete(t *testing.T) {
	for _, m := range modes() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			tr := newTree(t, m)
			for i := uint64(0); i < 2000; i++ {
				tr.Insert(i, i)
			}
			// Delete the odd keys.
			for i := uint64(1); i < 2000; i += 2 {
				if err := tr.Delete(i); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(0); i < 2000; i++ {
				_, err := tr.Get(i)
				if i%2 == 0 && err != nil {
					t.Fatalf("even key %d lost: %v", i, err)
				}
				if i%2 == 1 && !errors.Is(err, ErrNotFound) {
					t.Fatalf("odd key %d survived: %v", i, err)
				}
			}
			if err := tr.Delete(1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete: %v", err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScanRange(t *testing.T) {
	for _, m := range modes() {
		tr := newTree(t, m)
		for i := uint64(0); i < 3000; i++ {
			tr.Insert(i*2, i) // even keys only
		}
		var got []uint64
		err := tr.Scan(100, 120, func(k, v uint64) bool {
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
		if len(got) != len(want) {
			t.Fatalf("%v: scan got %v", m, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: scan[%d] = %d, want %d", m, i, got[i], want[i])
			}
		}
		// Early stop.
		count := 0
		tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
			count++
			return count < 10
		})
		if count != 10 {
			t.Fatalf("early stop visited %d", count)
		}
		// Cross-leaf full scan is ordered.
		prev := int64(-1)
		tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
			if int64(k) <= prev {
				t.Fatalf("scan out of order: %d after %d", k, prev)
			}
			prev = int64(k)
			return true
		})
	}
}

// Cross-check against a reference map over a long random op sequence.
func TestAgainstReferenceModel(t *testing.T) {
	for _, m := range modes() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			tr := newTree(t, m)
			ref := map[uint64]uint64{}
			src := rng.New(2024)
			for op := 0; op < 30000; op++ {
				k := uint64(src.Intn(5000))
				switch src.Intn(3) {
				case 0, 1:
					v := src.Uint64()
					tr.Insert(k, v)
					ref[k] = v
				case 2:
					err := tr.Delete(k)
					_, existed := ref[k]
					if existed && err != nil {
						t.Fatalf("delete existing %d: %v", k, err)
					}
					if !existed && !errors.Is(err, ErrNotFound) {
						t.Fatalf("delete missing %d: %v", k, err)
					}
					delete(ref, k)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for k, want := range ref {
				got, err := tr.Get(k)
				if err != nil || got != want {
					t.Fatalf("Get(%d) = %d, %v; want %d", k, got, err, want)
				}
			}
			if c, _ := tr.Count(); c != len(ref) {
				t.Fatalf("Count = %d, ref %d", c, len(ref))
			}
		})
	}
}

func TestConcurrentInsertsDisjointRanges(t *testing.T) {
	for _, m := range modes() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			tr := newTree(t, m)
			const workers, per = 8, 2000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w) * 1_000_000
					for i := uint64(0); i < per; i++ {
						if err := tr.Insert(base+i, base+i); err != nil {
							t.Errorf("insert: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if c, _ := tr.Count(); c != workers*per {
				t.Fatalf("Count = %d, want %d", c, workers*per)
			}
			for w := 0; w < workers; w++ {
				base := uint64(w) * 1_000_000
				for i := uint64(0); i < per; i += 97 {
					if v, err := tr.Get(base + i); err != nil || v != base+i {
						t.Fatalf("Get(%d) = %d, %v", base+i, v, err)
					}
				}
			}
		})
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	tr := newTree(t, Crabbing)
	// Preload.
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(i, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w))
			for i := 0; i < 3000; i++ {
				k := uint64(src.Intn(20000))
				switch src.Intn(4) {
				case 0:
					tr.Insert(k, k)
				case 1:
					tr.Get(k)
				case 2:
					tr.Delete(k)
				case 3:
					n := 0
					tr.Scan(k, k+100, func(uint64, uint64) bool { n++; return true })
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenExistingTree(t *testing.T) {
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 512, Shards: 8})
	tr, err := Create(pool, Crabbing)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		tr.Insert(i, i+1)
	}
	tr2 := Open(pool, tr.RootID(), Coarse)
	for i := uint64(0); i < 3000; i += 131 {
		if v, err := tr2.Get(i); err != nil || v != i+1 {
			t.Fatalf("reopened Get(%d) = %d, %v", i, v, err)
		}
	}
}

func TestModeString(t *testing.T) {
	if Coarse.String() != "coarse" || Crabbing.String() != "crabbing" {
		t.Fatal("Mode.String mismatch")
	}
}

func BenchmarkGet(b *testing.B) {
	for _, m := range modes() {
		b.Run(m.String(), func(b *testing.B) {
			tr := newTree(b, m)
			const n = 100000
			for i := uint64(0); i < n; i++ {
				tr.Insert(i, i)
			}
			src := rng.New(1)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				s := src.Split(uint64(b.N))
				for pb.Next() {
					tr.Get(uint64(s.Intn(n)))
				}
			})
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	for _, m := range modes() {
		b.Run(m.String(), func(b *testing.B) {
			pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 8192, Shards: 16})
			tr, _ := Create(pool, m)
			var ctr uint64
			var mu sync.Mutex
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				ctr++
				base := ctr * 1_000_000_000
				mu.Unlock()
				i := uint64(0)
				for pb.Next() {
					tr.Insert(base+i, i)
					i++
				}
			})
		})
	}
}
