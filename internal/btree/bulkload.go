package btree

import (
	"fmt"
	"sort"

	"hydra/internal/buffer"
	"hydra/internal/page"
)

// KV is one (key, value) pair for bulk loading.
type KV struct {
	Key, Value uint64
}

// BulkLoad builds a tree bottom-up from sorted, duplicate-free pairs:
// leaves are packed left to right and linked, then each interior
// level is built over the previous one. It is O(n) with no latch or
// split overhead and is what recovery uses to rebuild indexes.
func BulkLoad(pool *buffer.Pool, mode Mode, pairs []KV) (*Tree, error) {
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key <= pairs[i-1].Key {
			return nil, fmt.Errorf("btree: BulkLoad input not sorted/unique at %d", i)
		}
	}
	if len(pairs) == 0 {
		return Create(pool, mode)
	}

	type child struct {
		id       page.ID
		firstKey uint64
	}

	// Build the leaf level.
	// A 90% fill leaves slack so the first post-load inserts do not
	// split immediately.
	perLeaf := LeafCap * 9 / 10
	if perLeaf < 1 {
		perLeaf = 1
	}
	var level []child
	var prev *buffer.Frame
	for start := 0; start < len(pairs); start += perLeaf {
		end := start + perLeaf
		if end > len(pairs) {
			end = len(pairs)
		}
		f, err := pool.NewPage(page.TypeBTreeLeaf)
		if err != nil {
			return nil, err
		}
		n := node{f.Page}
		for i, kv := range pairs[start:end] {
			n.setLeafEntry(i, kv.Key, kv.Value)
		}
		n.setCount(end - start)
		if prev != nil {
			prev.Page.SetNext(f.ID())
			pool.Unpin(prev, true)
		}
		level = append(level, child{f.ID(), pairs[start].Key})
		prev = f
	}
	pool.Unpin(prev, true)

	// Build interior levels until one node remains.
	perInner := InnerCap * 9 / 10
	if perInner < 1 {
		perInner = 1
	}
	for len(level) > 1 {
		var next []child
		for start := 0; start < len(level); {
			// One parent takes child0 plus up to perInner keyed children.
			f, err := pool.NewPage(page.TypeBTreeInner)
			if err != nil {
				return nil, err
			}
			n := node{f.Page}
			n.setChild0(level[start].id)
			keys := 0
			i := start + 1
			for ; i < len(level) && keys < perInner; i++ {
				n.setInnerEntry(keys, level[i].firstKey, level[i].id)
				keys++
			}
			// Avoid leaving an orphan single child for the next parent
			// (an inner node needs child0 plus at least the structure
			// to be valid; a lone child0 parent is legal but wasteful —
			// only allow it when unavoidable).
			n.setCount(keys)
			next = append(next, child{f.ID(), level[start].firstKey})
			pool.Unpin(f, true)
			start = i
		}
		level = next
	}
	return &Tree{pool: pool, mode: mode, root: level[0].id}, nil
}

// SortKVs sorts pairs by key in place (helper for callers collecting
// unordered pairs, e.g. recovery's heap scans).
func SortKVs(pairs []KV) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
}
