package latch

import (
	"sync"
	"testing"
	"time"
)

func kinds() []Kind { return []Kind{Blocking, Spinning} }

func TestExclusiveMutualExclusion(t *testing.T) {
	for _, k := range kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			l := New(k)
			var counter int
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 1000; j++ {
						l.Acquire(Exclusive)
						counter++
						l.Release(Exclusive)
					}
				}()
			}
			wg.Wait()
			if counter != 8000 {
				t.Fatalf("counter = %d, want 8000", counter)
			}
		})
	}
}

func TestSharedAllowsConcurrency(t *testing.T) {
	for _, k := range kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			l := New(k)
			l.Acquire(Shared)
			done := make(chan struct{})
			go func() {
				l.Acquire(Shared)
				l.Release(Shared)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(time.Second):
				t.Fatal("second shared acquisition blocked")
			}
			l.Release(Shared)
		})
	}
}

func TestExclusiveExcludesShared(t *testing.T) {
	for _, k := range kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			l := New(k)
			l.Acquire(Exclusive)
			got := make(chan struct{})
			go func() {
				l.Acquire(Shared)
				close(got)
				l.Release(Shared)
			}()
			select {
			case <-got:
				t.Fatal("shared acquired during exclusive hold")
			case <-time.After(20 * time.Millisecond):
			}
			l.Release(Exclusive)
			select {
			case <-got:
			case <-time.After(time.Second):
				t.Fatal("shared never acquired after exclusive release")
			}
		})
	}
}

func TestTryUpgrade(t *testing.T) {
	// Spinning latch: sole reader upgrades; blocking latch: never.
	s := New(Spinning)
	s.Acquire(Shared)
	if !s.TryUpgrade() {
		t.Fatal("spin latch sole-reader upgrade failed")
	}
	s.Release(Exclusive)

	b := New(Blocking)
	b.Acquire(Shared)
	if b.TryUpgrade() {
		t.Fatal("blocking latch upgrade unexpectedly succeeded")
	}
	b.Release(Shared)
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("Mode.String mismatch")
	}
	if Blocking.String() != "blocking" || Spinning.String() != "spinning" {
		t.Fatal("Kind.String mismatch")
	}
}

func BenchmarkLatch(b *testing.B) {
	for _, k := range kinds() {
		b.Run(k.String()+"/X", func(b *testing.B) {
			l := New(k)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Acquire(Exclusive)
					l.Release(Exclusive)
				}
			})
		})
		b.Run(k.String()+"/S", func(b *testing.B) {
			l := New(k)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Acquire(Shared)
					l.Release(Shared)
				}
			})
		})
	}
}
