// Package latch provides the short-duration physical locks ("latches")
// that protect in-memory structures such as buffer frames and B+-tree
// nodes. Latches differ from transactional locks: they are held for
// microseconds, carry no deadlock detection, and their acquisition
// mechanism (spin vs block) is exactly the primitive-level tradeoff
// the paper highlights.
package latch

import (
	"sync"

	"hydra/internal/invariant"
	"hydra/internal/obs"
	"hydra/internal/sync2"
)

// Mode is the requested access mode.
type Mode int

const (
	// Shared allows any number of concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single owner.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Latch is a reader-writer latch. Implementations must support
// recursive-free, paired Acquire/Release usage.
type Latch interface {
	Acquire(m Mode)
	// AcquireC is Acquire with a phase clock: when the latch cannot
	// be taken immediately, the wait is attributed to the clock's
	// latch-wait phase. The uncontended path performs no clock reads;
	// a nil clock behaves exactly like Acquire.
	AcquireC(m Mode, c *obs.PhaseClock)
	Release(m Mode)
	// TryUpgrade attempts a Shared->Exclusive conversion without
	// releasing; it reports success. On failure the shared hold is
	// kept.
	TryUpgrade() bool
}

// Kind selects a latch implementation.
type Kind int

const (
	// Blocking parks waiters on the runtime (sync.RWMutex).
	Blocking Kind = iota
	// Spinning busy-waits (sync2.SpinRWLock).
	Spinning
)

func (k Kind) String() string {
	if k == Blocking {
		return "blocking"
	}
	return "spinning"
}

// New returns a fresh latch of the given kind.
func New(k Kind) Latch {
	if k == Spinning {
		return &spinLatch{}
	}
	return &blockLatch{}
}

type blockLatch struct {
	mu sync.RWMutex
}

func (l *blockLatch) Acquire(m Mode) {
	invariant.Acquired(invariant.TierFrameLatch, "latch")
	s := obs.LatchStart(obs.TierFrameLatch)
	if m == Shared {
		l.mu.RLock()
	} else {
		l.mu.Lock()
	}
	obs.LatchDone(obs.TierFrameLatch, s)
}

func (l *blockLatch) AcquireC(m Mode, c *obs.PhaseClock) {
	if c == nil {
		l.Acquire(m)
		return
	}
	invariant.Acquired(invariant.TierFrameLatch, "latch")
	s := obs.LatchStart(obs.TierFrameLatch)
	if m == Shared {
		if !l.mu.TryRLock() {
			t0 := obs.Now()
			l.mu.RLock()
			c.Add(obs.PhaseLatchWait, obs.Now()-t0)
		}
	} else {
		if !l.mu.TryLock() {
			t0 := obs.Now()
			l.mu.Lock()
			c.Add(obs.PhaseLatchWait, obs.Now()-t0)
		}
	}
	obs.LatchDone(obs.TierFrameLatch, s)
}

func (l *blockLatch) Release(m Mode) {
	if m == Shared {
		l.mu.RUnlock()
	} else {
		l.mu.Unlock()
	}
	invariant.Released(invariant.TierFrameLatch, "latch")
}

// TryUpgrade on the blocking latch always fails: sync.RWMutex has no
// upgrade path, so callers fall back to release-and-reacquire.
func (l *blockLatch) TryUpgrade() bool { return false }

type spinLatch struct {
	rw sync2.SpinRWLock
}

func (l *spinLatch) Acquire(m Mode) {
	invariant.Acquired(invariant.TierFrameLatch, "latch")
	s := obs.LatchStart(obs.TierFrameLatch)
	if m == Shared {
		l.rw.RLock()
	} else {
		l.rw.Lock()
	}
	obs.LatchDone(obs.TierFrameLatch, s)
}

func (l *spinLatch) AcquireC(m Mode, c *obs.PhaseClock) {
	if c == nil {
		l.Acquire(m)
		return
	}
	invariant.Acquired(invariant.TierFrameLatch, "latch")
	s := obs.LatchStart(obs.TierFrameLatch)
	if m == Shared {
		if !l.rw.TryRLock() {
			t0 := obs.Now()
			l.rw.RLock()
			c.Add(obs.PhaseLatchWait, obs.Now()-t0)
		}
	} else {
		if !l.rw.TryLock() {
			t0 := obs.Now()
			l.rw.Lock()
			c.Add(obs.PhaseLatchWait, obs.Now()-t0)
		}
	}
	obs.LatchDone(obs.TierFrameLatch, s)
}

func (l *spinLatch) Release(m Mode) {
	if m == Shared {
		l.rw.RUnlock()
	} else {
		l.rw.Unlock()
	}
	invariant.Released(invariant.TierFrameLatch, "latch")
}

func (l *spinLatch) TryUpgrade() bool { return l.rw.TryUpgrade() }
