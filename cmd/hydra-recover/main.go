// Command hydra-recover inspects a hydra write-ahead log: it scans
// the records, prints a per-transaction summary, and reports what an
// ARIES restart would do (winners, losers, torn tail).
//
// Usage:
//
//	hydra-recover -log /path/to/wal.log [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hydra/internal/wal"
)

func main() {
	path := flag.String("log", "", "path to wal.log")
	verbose := flag.Bool("v", false, "print every record")
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "hydra-recover: -log is required")
		os.Exit(2)
	}
	dev, err := wal.OpenFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-recover: %v\n", err)
		os.Exit(1)
	}
	defer dev.Close()

	sc, err := wal.NewScanner(dev, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-recover: %v\n", err)
		os.Exit(1)
	}
	type txnSum struct {
		records   int
		committed bool
		ended     bool
	}
	txns := map[uint64]*txnSum{}
	byType := map[wal.RecType]int{}
	total := 0
	for sc.Next() {
		r := sc.Record()
		total++
		byType[r.Type]++
		if *verbose {
			fmt.Printf("%10d  %-10s txn=%-6d prev=%d page=%d payload=%dB\n",
				r.LSN, r.Type, r.TxnID, int64(r.PrevLSN), r.PageID, len(r.Payload))
		}
		if r.TxnID == 0 {
			continue
		}
		ts := txns[r.TxnID]
		if ts == nil {
			ts = &txnSum{}
			txns[r.TxnID] = ts
		}
		ts.records++
		switch r.Type {
		case wal.RecCommit:
			ts.committed = true
		case wal.RecEnd:
			ts.ended = true
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-recover: log corrupt: %v\n", err)
		os.Exit(1)
	}
	size, _ := dev.Size()
	fmt.Printf("log: %d bytes, %d records, usable to LSN %d", size, total, sc.Pos())
	if int64(sc.Pos()) < size {
		fmt.Printf(" (torn tail: %d trailing bytes)", size-int64(sc.Pos()))
	}
	fmt.Println()

	var types []wal.RecType
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		fmt.Printf("  %-10s %d\n", t, byType[t])
	}

	winners, losers := 0, 0
	for _, ts := range txns {
		if ts.committed || ts.ended {
			winners++
		} else {
			losers++
		}
	}
	fmt.Printf("transactions: %d total, %d complete, %d losers (would be rolled back at restart)\n",
		len(txns), winners, losers)
}
