// Command hydra-dump inspects a hydra data file (pages.db) offline,
// without opening the engine or replaying the log: it decodes the
// meta page, walks each table's heap chain, and prints structure
// statistics (and optionally the rows). Because it bypasses recovery
// it shows the *on-disk* state, which after a crash may legitimately
// trail the log — pair it with hydra-recover to see both sides.
//
// Usage:
//
//	hydra-dump -data /path/to/pages.db [-rows] [-table name]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"hydra/internal/buffer"
	"hydra/internal/page"
)

func main() {
	path := flag.String("data", "", "path to pages.db")
	showRows := flag.Bool("rows", false, "print every live row")
	only := flag.String("table", "", "restrict to one table")
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "hydra-dump: -data is required")
		os.Exit(2)
	}
	if err := run(*path, *showRows, *only); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-dump: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, showRows bool, only string) error {
	store, err := buffer.OpenFileStore(path)
	if err != nil {
		return err
	}
	defer store.Close()
	n, err := store.NumPages()
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d pages (%d KiB)\n", path, n, n*page.Size/1024)
	if n == 0 {
		return nil
	}

	var meta page.Page
	if err := store.ReadPage(0, &meta); err != nil {
		return fmt.Errorf("meta page: %w", err)
	}
	rec, err := meta.Read(0)
	if err != nil {
		return fmt.Errorf("meta record: %w", err)
	}
	if len(rec) < 12 {
		return fmt.Errorf("meta record truncated")
	}
	master := binary.LittleEndian.Uint64(rec)
	if master == ^uint64(0) {
		fmt.Println("master: none (no checkpoint taken)")
	} else {
		fmt.Printf("master: begin-checkpoint at LSN %d\n", master)
	}

	// Catalog: count(4) then id(4) heapFirst(8) nameLen(2) name.
	cat := rec[8:]
	count := int(binary.LittleEndian.Uint32(cat))
	off := 4
	fmt.Printf("catalog: %d table(s)\n\n", count)
	for i := 0; i < count; i++ {
		id := binary.LittleEndian.Uint32(cat[off:])
		first := page.ID(binary.LittleEndian.Uint64(cat[off+4:]))
		nl := int(binary.LittleEndian.Uint16(cat[off+12:]))
		name := string(cat[off+14 : off+14+nl])
		off += 14 + nl
		if only != "" && name != only {
			continue
		}
		if err := dumpTable(store, id, name, first, showRows); err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
	}
	return nil
}

func dumpTable(store *buffer.FileStore, id uint32, name string, first page.ID, showRows bool) error {
	fmt.Printf("table %q (id %d), heap head page %d\n", name, id, first)
	var (
		pages, rows, tombs int
		bytes              int
	)
	cur := first
	for cur != page.InvalidID {
		var p page.Page
		if err := store.ReadPage(cur, &p); err != nil {
			return fmt.Errorf("page %d: %w", cur, err)
		}
		pages++
		tombs += p.SlotCount() - p.LiveCount()
		p.LiveRecords(func(slot int, rec []byte) bool {
			rows++
			bytes += len(rec)
			if showRows && len(rec) >= 8 {
				key := binary.LittleEndian.Uint64(rec)
				val := rec[8:]
				if len(val) > 32 {
					fmt.Printf("  %12d  %q... (%dB)\n", key, val[:32], len(val))
				} else {
					fmt.Printf("  %12d  %q\n", key, val)
				}
			}
			return true
		})
		cur = p.Next()
	}
	fmt.Printf("  %d page(s), %d live row(s), %d tombstone(s), %d payload bytes\n\n",
		pages, rows, tombs, bytes)
	return nil
}
