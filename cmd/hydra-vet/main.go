// Command hydra-vet runs Hydra's concurrency-invariant analyzer suite
// (internal/analysis/...) over the module.
//
// Standalone mode loads and type-checks packages from source with no
// dependency on the go command or network. Because the whole tree is
// loaded, cross-package summary closure (latchsum) resolves imports
// from source; passing -summaries additionally persists the computed
// summaries so later go vet -vettool runs (which see one package at a
// time) can consume them:
//
//	hydra-vet ./...
//	hydra-vet -analyzers lockscope,latchorder internal/buffer
//	hydra-vet -summaries .hydra-vet/summaries.json ./...
//
// It also speaks the go vet -vettool protocol, so the same binary
// plugs into the standard toolchain (which additionally covers test
// files of each package); there, cross-package summaries come from
// the cache named by the HYDRA_VET_SUMMARIES environment variable:
//
//	go build -o bin/hydra-vet ./cmd/hydra-vet
//	HYDRA_VET_SUMMARIES=.hydra-vet/summaries.json \
//	  go vet -vettool=$(pwd)/bin/hydra-vet ./...
//
// Machine-readable output and baselining, for CI:
//
//	hydra-vet -json ./...                    # {"findings": [...], "dyn_calls": [...]}
//	hydra-vet -write-baseline vet.baseline.json ./...
//	hydra-vet -baseline vet.baseline.json ./...  # exit 1 only on NEW findings
//
// The -json object carries, alongside the findings, the latchsum
// dynamic-dispatch census: every function whose synchronous path has
// interface-method or function-value call sites, with the count of
// such sites. These are the closure's blind spots — acquisitions
// behind them are invisible to latchorder/blockscope (DESIGN.md §6) —
// so the census is the honest "what the analysis did NOT see" half of
// the report. Baseline files remain plain finding arrays.
//
// Baseline comparison matches findings by (file, analyzer, message),
// ignoring line numbers, so unrelated edits above a baselined finding
// don't churn CI.
//
// Exit status is 1 when any non-baselined diagnostic survives
// suppression. Findings are baselined in place with justified
// directives:
//
//	//hydra:vet:ignore lockscope -- capacity-1 channel, receiver guaranteed
//	//hydra:blockok -- bounded: queue drained by this goroutine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hydra/internal/analysis"
	"hydra/internal/analysis/atomicmix"
	"hydra/internal/analysis/blockscope"
	"hydra/internal/analysis/latchorder"
	"hydra/internal/analysis/latchsum"
	"hydra/internal/analysis/lockscope"
	"hydra/internal/analysis/phasebal"
	"hydra/internal/analysis/poolcycle"
)

// all lists every analyzer in the suite.
func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockscope.Analyzer,
		latchorder.Analyzer,
		blockscope.Analyzer,
		poolcycle.Analyzer,
		atomicmix.Analyzer,
		phasebal.Analyzer,
	}
}

// finding is the JSON form of one diagnostic.
type finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// key identifies a finding for baseline comparison: file, analyzer
// and message — NOT line, so edits above a baselined finding don't
// churn the diff.
func (f finding) key() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

func main() {
	// go vet invokes the tool as `hydra-vet -V=full` and then
	// `hydra-vet <dir>/vet.cfg`; detect and divert before flag
	// parsing so the standalone flags don't collide.
	if unitcheckerMain(all()) {
		return
	}

	var (
		names     = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		tests     = flag.Bool("tests", false, "also analyze in-package _test.go files")
		tags      = flag.String("tags", "", "comma-separated build tags")
		list      = flag.Bool("list", false, "list analyzers and exit")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array (file, line, analyzer, message, chain)")
		baseline  = flag.String("baseline", "", "baseline file: report and fail only on findings not in it")
		writeBase = flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
		summaries = flag.String("summaries", "", "cross-package summary cache to read and refresh (for later go vet -vettool runs)")
		blockRank = flag.Int("blockscope-rank", blockscope.MinRank, "minimum hierarchy rank blockscope treats as spin-tier")
	)
	flag.Parse()

	analyzers := all()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		analyzers = subset(analyzers, *names)
	}
	blockscope.MinRank = *blockRank
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var cache *latchsum.Cache
	if *summaries != "" {
		cache = latchsum.LoadCache(*summaries)
		latchsum.Default.SetDisk(cache)
	}

	ld, err := analysis.NewLoader(".", "")
	if err != nil {
		fail(err)
	}
	ld.IncludeTests = *tests
	if *tags != "" {
		ld.Tags = strings.Split(*tags, ",")
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fail(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fail(err)
	}
	if cache != nil {
		refreshSummaries(cache, pkgs)
	}

	findings := render(pkgs, diags)
	if *writeBase != "" {
		if err := writeBaseline(*writeBase, findings); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "hydra-vet: wrote %d finding(s) to %s\n", len(findings), *writeBase)
		return
	}
	if *baseline != "" {
		findings, err = diffBaseline(*baseline, findings)
		if err != nil {
			fail(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		rep := jsonReport{Findings: findings, DynCalls: dynCensus(pkgs)}
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: %s: %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// jsonReport is the -json output shape: the findings plus the
// latchsum dynamic-dispatch census (the analysis's known blind spots).
type jsonReport struct {
	Findings []finding  `json:"findings"`
	DynCalls []dynCount `json:"dyn_calls"`
}

// dynCount is one function's dynamic-dispatch exposure: call sites on
// its synchronous path (interface methods, function values) whose
// runtime target — and whatever it acquires — the latchsum closure
// cannot see.
type dynCount struct {
	Func  string `json:"func"`
	Count int    `json:"count"`
}

// dynCensus collects every summarized function with dynamic call
// sites, sorted by name for stable output.
func dynCensus(pkgs []*analysis.Package) []dynCount {
	out := []dynCount{}
	for _, pkg := range pkgs {
		for name, s := range latchsum.Default.ByName(pkg) {
			if s.DynCalls > 0 {
				out = append(out, dynCount{Func: name, Count: s.DynCalls})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}

// render converts diagnostics to findings with repo-relative paths
// (stable across checkouts, which baselines require).
func render(pkgs []*analysis.Package, diags []analysis.Diagnostic) []finding {
	cwd, _ := os.Getwd()
	var out []finding
	if len(pkgs) == 0 {
		return out
	}
	fset := pkgs[0].Fset // the loader shares one FileSet across packages
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, finding{
			File:     file,
			Line:     pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Chain:    d.Chain,
		})
	}
	return out
}

// writeBaseline persists findings sorted for stable diffs.
func writeBaseline(path string, findings []finding) error {
	sorted := append([]finding(nil), findings...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].key() != sorted[j].key() {
			return sorted[i].key() < sorted[j].key()
		}
		return sorted[i].Line < sorted[j].Line
	})
	if sorted == nil {
		sorted = []finding{}
	}
	raw, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// diffBaseline returns the findings not accounted for by the baseline
// — a multiset diff on (file, analyzer, message), so k occurrences in
// the baseline absorb at most k current ones.
func diffBaseline(path string, findings []finding) ([]finding, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	var base []finding
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	budget := make(map[string]int)
	for _, f := range base {
		budget[f.key()]++
	}
	var fresh []finding
	for _, f := range findings {
		if budget[f.key()] > 0 {
			budget[f.key()]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, nil
}

// refreshSummaries (re)computes the cross-package summary cache for
// every loaded package whose sources changed since the last run.
func refreshSummaries(cache *latchsum.Cache, pkgs []*analysis.Package) {
	for _, pkg := range pkgs {
		var names []string
		for _, f := range pkg.Files {
			names = append(names, filepath.Base(pkg.Fset.Position(f.Package).Filename))
		}
		fp := latchsum.Fingerprint(pkg.Dir, names)
		if cache.Fresh(pkg.Types.Path(), fp) {
			continue
		}
		cache.Store(pkg.Types.Path(), fp, latchsum.Default.ByName(pkg))
	}
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-vet: saving summaries:", err)
	}
}

func subset(analyzers []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		fail(fmt.Errorf("unknown analyzer %q", n))
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hydra-vet:", err)
	os.Exit(2)
}
