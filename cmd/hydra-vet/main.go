// Command hydra-vet runs Hydra's concurrency-invariant analyzer suite
// (internal/analysis/...) over the module.
//
// Standalone mode loads and type-checks packages from source with no
// dependency on the go command or network:
//
//	hydra-vet ./...
//	hydra-vet -analyzers lockscope,latchorder internal/buffer
//
// It also speaks the go vet -vettool protocol, so the same binary
// plugs into the standard toolchain (which additionally covers test
// files of each package):
//
//	go build -o bin/hydra-vet ./cmd/hydra-vet
//	go vet -vettool=$(pwd)/bin/hydra-vet ./...
//
// Exit status is 1 when any diagnostic survives suppression. Findings
// are baselined in place with justified directives:
//
//	//hydra:vet:ignore lockscope -- capacity-1 channel, receiver guaranteed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hydra/internal/analysis"
	"hydra/internal/analysis/atomicmix"
	"hydra/internal/analysis/latchorder"
	"hydra/internal/analysis/lockscope"
	"hydra/internal/analysis/poolcycle"
)

// all lists every analyzer in the suite.
func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockscope.Analyzer,
		latchorder.Analyzer,
		poolcycle.Analyzer,
		atomicmix.Analyzer,
	}
}

func main() {
	// go vet invokes the tool as `hydra-vet -V=full` and then
	// `hydra-vet <dir>/vet.cfg`; detect and divert before flag
	// parsing so the standalone flags don't collide.
	if unitcheckerMain(all()) {
		return
	}

	var (
		names = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		tests = flag.Bool("tests", false, "also analyze in-package _test.go files")
		tags  = flag.String("tags", "", "comma-separated build tags")
		list  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers := all()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		analyzers = subset(analyzers, *names)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ld, err := analysis.NewLoader(".", "")
	if err != nil {
		fail(err)
	}
	ld.IncludeTests = *tests
	if *tags != "" {
		ld.Tags = strings.Split(*tags, ",")
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fail(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fail(err)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func subset(analyzers []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		fail(fmt.Errorf("unknown analyzer %q", n))
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hydra-vet:", err)
	os.Exit(2)
}
