package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hydra/internal/analysis"
	"hydra/internal/analysis/latchsum"
)

// unitcheckerMain implements the `go vet -vettool` driver protocol and
// reports whether it handled the invocation. The go command probes the
// tool three ways:
//
//   - `tool -V=full`: print "name version <fingerprint>"; the output
//     keys vet's result cache.
//   - `tool -flags`: print the tool's flag schema as JSON (none here).
//   - `tool <dir>/vet.cfg`: analyze one package unit described by the
//     JSON config, with dependencies supplied as gc export data.
func unitcheckerMain(analyzers []*analysis.Analyzer) bool {
	args := os.Args[1:]
	if len(args) != 1 {
		return false
	}
	switch {
	case args[0] == "-V=full":
		// First field must match the executable's base name.
		fmt.Printf("%s version hydra-offline-1\n", filepath.Base(os.Args[0]))
		return true
	case args[0] == "-flags":
		fmt.Println("[]")
		return true
	case strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0], analyzers))
		return true
	}
	return false
}

// vetConfig mirrors the fields of the go command's vet.cfg that this
// driver needs; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet unit. Exit codes follow unitchecker
// convention: 0 clean, 1 driver failure, 2 diagnostics reported.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return unitErr(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return unitErr(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}

	// hydra-vet computes no facts, but downstream units expect the
	// vetx file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return unitErr(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return unitErr(err)
		}
		files = append(files, f)
	}

	// Dependencies come as compiler export data: resolve the import
	// path through ImportMap, then read the listed package file.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return unitErr(fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err))
	}

	// In unit mode dependencies are export data only — no source to
	// compute cross-package latch summaries from. A cache written by a
	// prior standalone run (hydra-vet -summaries) restores whole-program
	// visibility; make lint sequences the two.
	if path := os.Getenv("HYDRA_VET_SUMMARIES"); path != "" {
		latchsum.Default.SetDisk(latchsum.LoadCache(path))
	}

	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		return unitErr(err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func unitErr(err error) int {
	fmt.Fprintln(os.Stderr, "hydra-vet:", err)
	return 1
}
