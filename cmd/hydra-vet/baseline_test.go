package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDiffBaselineIgnoresLines: baseline matching is by (file,
// analyzer, message) multiset — line drift doesn't churn, extra
// occurrences of a baselined message do.
func TestDiffBaselineIgnoresLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	base := `[
  {"file":"a.go","line":10,"analyzer":"blockscope","message":"channel send while holding spin-tier x"},
  {"file":"b.go","line":5,"analyzer":"latchorder","message":"acquires y while holding z"}
]`
	if err := os.WriteFile(path, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}

	cur := []finding{
		// Same finding, different line: absorbed.
		{File: "a.go", Line: 42, Analyzer: "blockscope", Message: "channel send while holding spin-tier x"},
		// Second occurrence of a finding baselined once: fresh.
		{File: "a.go", Line: 50, Analyzer: "blockscope", Message: "channel send while holding spin-tier x"},
		// Brand new finding: fresh.
		{File: "c.go", Line: 1, Analyzer: "lockscope", Message: "new"},
	}
	fresh, err := diffBaseline(path, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %+v, want 2 findings", fresh)
	}
	if fresh[0].Line != 50 || fresh[1].File != "c.go" {
		t.Errorf("wrong findings survived: %+v", fresh)
	}
}

// TestWriteBaselineRoundTrip: an empty tree writes a diffable empty
// baseline.
func TestWriteBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := writeBaseline(path, nil); err != nil {
		t.Fatal(err)
	}
	fresh, err := diffBaseline(path, []finding{{File: "a.go", Analyzer: "x", Message: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 {
		t.Fatalf("fresh = %+v, want the single new finding", fresh)
	}
}
