// Command hydra-bench regenerates the paper-reproduction experiments
// (E1-E8, see DESIGN.md / EXPERIMENTS.md) and prints their tables.
//
// Usage:
//
//	hydra-bench [-scale quick|full] [-json out.json] [e1 e2 ...]
//
// With no experiment ids, every experiment runs in order. With -json,
// a machine-readable run document (schema hydra-bench/v1, see
// EXPERIMENTS.md) is written to the given path ("-" for stdout) in
// addition to the human tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hydra/internal/harness"
)

// benchDoc is the top-level -json document: one run of hydra-bench
// with enough environment context to compare runs across machines.
type benchDoc struct {
	Schema      string     `json:"schema"` // "hydra-bench/v1"
	Date        string     `json:"date"`   // RFC 3339, run start
	Scale       string     `json:"scale"`
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	Experiments []benchExp `json:"experiments"`
}

type benchExp struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	Claim      string       `json:"claim"`
	ElapsedSec float64      `json:"elapsed_sec"`
	Tables     []benchTable `json:"tables"`
	Notes      []string     `json:"notes,omitempty"`
}

type benchTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "also write a hydra-bench/v1 JSON run document to this path (- for stdout)")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale harness.Scale
	switch *scaleFlag {
	case "quick":
		scale = harness.Quick
	case "full":
		scale = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "hydra-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	ids := flag.Args()
	var exps []harness.Experiment
	if len(ids) == 0 {
		exps = harness.All()
	} else {
		for _, id := range ids {
			e, err := harness.Find(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hydra-bench: %v\n", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	fmt.Printf("hydra-bench: %d experiment(s), scale=%s, GOMAXPROCS=%d\n\n",
		len(exps), *scaleFlag, runtime.GOMAXPROCS(0))
	doc := benchDoc{
		Schema:     "hydra-bench/v1",
		Date:       time.Now().UTC().Format(time.RFC3339),
		Scale:      *scaleFlag,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, e := range exps {
		start := time.Now()
		rep, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydra-bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		rep.Fprint(os.Stdout)
		elapsed := time.Since(start)
		fmt.Printf("(%s took %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		doc.Experiments = append(doc.Experiments, benchExp{
			ID: rep.ID, Title: rep.Title, Claim: rep.Claim,
			ElapsedSec: elapsed.Seconds(),
			Tables:     benchTables(rep.Tab),
			Notes:      rep.Notes,
		})
	}
	if *jsonPath != "" {
		if err := writeDoc(*jsonPath, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "hydra-bench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		if *jsonPath != "-" {
			fmt.Printf("hydra-bench: wrote %s\n", *jsonPath)
		}
	}
}

func benchTables(tabs []*harness.Table) []benchTable {
	out := make([]benchTable, 0, len(tabs))
	for _, t := range tabs {
		out = append(out, benchTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	return out
}

func writeDoc(path string, doc *benchDoc) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
