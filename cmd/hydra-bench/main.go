// Command hydra-bench regenerates the paper-reproduction experiments
// (E1-E8, see DESIGN.md / EXPERIMENTS.md) and prints their tables.
//
// Usage:
//
//	hydra-bench [-scale quick|full] [e1 e2 ...]
//
// With no experiment ids, every experiment runs in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hydra/internal/harness"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale harness.Scale
	switch *scaleFlag {
	case "quick":
		scale = harness.Quick
	case "full":
		scale = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "hydra-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	ids := flag.Args()
	var exps []harness.Experiment
	if len(ids) == 0 {
		exps = harness.All()
	} else {
		for _, id := range ids {
			e, err := harness.Find(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hydra-bench: %v\n", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	fmt.Printf("hydra-bench: %d experiment(s), scale=%s, GOMAXPROCS=%d\n\n",
		len(exps), *scaleFlag, runtime.GOMAXPROCS(0))
	for _, e := range exps {
		start := time.Now()
		rep, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydra-bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		rep.Fprint(os.Stdout)
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
