// Command hydra-top is a live contention monitor for a running
// hydra-server: it polls the /stats endpoint and redraws a compact
// per-subsystem view — throughput, buffer hit ratio, group-commit
// batch size, and the per-latch-tier time-to-acquire tails that are
// the paper's leading indicator of a scalability pathology.
//
// Usage:
//
//	hydra-top [-addr localhost:7655] [-interval 1s] [-once]
//
// Rates (commits/s, etc.) are derived from successive cumulative
// snapshots; the first frame therefore shows totals only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"hydra/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7655", "observability address of hydra-server (-http)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "print a single frame and exit (no ANSI redraw)")
	flag.Parse()

	url := "http://" + *addr + "/stats"
	client := &http.Client{Timeout: 5 * time.Second}

	var prev *server.StatsJSON
	var prevAt time.Time
	for {
		st, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydra-top: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		if !*once {
			// Clear screen and home the cursor: a full redraw per
			// frame keeps the renderer stateless.
			fmt.Print("\x1b[2J\x1b[H")
		}
		render(os.Stdout, st, prev, now.Sub(prevAt))
		if *once {
			return
		}
		prev = st
		prevAt = now
		time.Sleep(*interval)
	}
}

func fetch(c *http.Client, url string) (*server.StatsJSON, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var st server.StatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// rate formats the delta of a cumulative counter as an events/second
// figure, or "-" on the first frame.
func rate(cur, prev uint64, dt time.Duration) string {
	if dt <= 0 || cur < prev {
		return "-"
	}
	return fmt.Sprintf("%.0f/s", float64(cur-prev)/dt.Seconds())
}

func render(w *os.File, st, prev *server.StatsJSON, dt time.Duration) {
	var p server.StatsJSON
	haveRates := prev != nil
	if haveRates {
		p = *prev
	}
	r := func(cur, prv uint64) string {
		if !haveRates {
			return "-"
		}
		return rate(cur, prv, dt)
	}

	fmt.Fprintf(w, "hydra-top  up %s  trace=%v(%d events)\n\n",
		(time.Duration(st.UptimeSec * float64(time.Second))).Round(time.Second),
		st.TraceEnabled, st.TraceEvents)

	fmt.Fprintf(w, "txn     commits=%-10d %-9s aborts=%-8d %-9s\n",
		st.Commits, r(st.Commits, p.Commits), st.Aborts, r(st.Aborts, p.Aborts))

	hitPct := 0.0
	if tot := st.Buffer.Hits + st.Buffer.Misses; tot > 0 {
		hitPct = 100 * float64(st.Buffer.Hits) / float64(tot)
	}
	fmt.Fprintf(w, "buffer  hit=%6.2f%%  fetch=%-9s evict=%-8s writeback=%s\n",
		hitPct, r(st.Buffer.Hits+st.Buffer.Misses, p.Buffer.Hits+p.Buffer.Misses),
		r(st.Buffer.Evictions, p.Buffer.Evictions),
		r(st.Buffer.Writebacks, p.Buffer.Writebacks))

	batch := 0.0
	if st.Log.Flushes > 0 {
		batch = float64(st.Log.Inserts) / float64(st.Log.Flushes)
	}
	fmt.Fprintf(w, "log     insert=%-9s flush=%-9s batch=%.1f rec/flush  group=%d\n",
		r(st.Log.Inserts, p.Log.Inserts), r(st.Log.Flushes, p.Log.Flushes),
		batch, st.Log.GroupInserts)

	// Per-flush syscall budget of the batched flush path: write
	// submissions and fsyncs per flush (vectored target: 1 write per
	// touched segment, fsyncs only for dirty segments).
	wpf, spf := 0.0, 0.0
	if st.Log.Flushes > 0 {
		wpf = float64(st.Log.FlushWrites) / float64(st.Log.Flushes)
		spf = float64(st.Log.DevSegSyncs) / float64(st.Log.Flushes)
	}
	fmt.Fprintf(w, "flushio write=%-9s sync=%-9s %.2f writes/flush  %.2f segsync/flush  skipped=%d\n",
		r(st.Log.DevWrites, p.Log.DevWrites), r(st.Log.DevSegSyncs, p.Log.DevSegSyncs),
		wpf, spf, st.Log.DevSegSyncSkips)

	fmt.Fprintf(w, "lock    acquire=%-9s wait=%-9s deadlock=%-6d timeout=%-6d escal=%d\n",
		r(st.Lock.Acquires, p.Lock.Acquires), r(st.Lock.Waits, p.Lock.Waits),
		st.Lock.Deadlocks, st.Lock.Timeouts, st.Lock.Escalations)

	// Lock-head lifecycle: a healthy freelist keeps the recycle rate
	// tracking the alloc-path miss rate (allocs stay flat once warm);
	// heat evictions mean distinct-name conflict churn is hitting the
	// bounded heat table's cap.
	recyclePct := 0.0
	if tot := st.Lock.HeadAllocs + st.Lock.HeadRecycles; tot > 0 {
		recyclePct = 100 * float64(st.Lock.HeadRecycles) / float64(tot)
	}
	fmt.Fprintf(w, "lockhead alloc=%-8s recycle=%-8s retire=%-8s %5.1f%% recycled  heatevict=%d\n",
		r(st.Lock.HeadAllocs, p.Lock.HeadAllocs), r(st.Lock.HeadRecycles, p.Lock.HeadRecycles),
		r(st.Lock.HeadRetires, p.Lock.HeadRetires), recyclePct, st.Lock.HeatEvictions)
	if st.LockWait.Count > 0 {
		fmt.Fprintf(w, "        wait dist: %s\n", st.LockWait.Summary)
	}

	// Thread-to-data execution: the single/cross split is the fast-path
	// hit ratio; batch is jobs moved per executor wakeup; depth sums
	// the instantaneous executor backlogs.
	if txns := st.Dora.SinglePartition + st.Dora.CrossPartition; txns > 0 {
		singlePct := 100 * float64(st.Dora.SinglePartition) / float64(txns)
		doraBatch := 0.0
		if st.Dora.Batches > 0 {
			doraBatch = float64(st.Dora.BatchedJobs) / float64(st.Dora.Batches)
		}
		depth := 0
		for _, d := range st.Dora.QueueDepths {
			depth += d
		}
		fmt.Fprintf(w, "dora    action=%-9s single=%5.1f%%  rvp=%-9s waits=%-7d timeout=%-6d batch=%.1f depth=%d\n",
			r(st.Dora.ActionsExecuted, p.Dora.ActionsExecuted), singlePct,
			r(st.Dora.RendezvousCrossed, p.Dora.RendezvousCrossed),
			st.Dora.LocalWaits, st.Dora.Timeouts, doraBatch, depth)
		if st.Dora.Service.Count > 0 {
			fmt.Fprintf(w, "        service: p50=%s p99=%s  inbox wait: p50=%s p99=%s\n",
				ns(st.Dora.Service.P50Ns), ns(st.Dora.Service.P99Ns),
				ns(st.Dora.Wait.P50Ns), ns(st.Dora.Wait.P99Ns))
		}
	}

	// Snapshot reads resolve against version chains without touching
	// the lock manager; bypass tracks the lock requests they skipped.
	// live/active are instantaneous gauges (chain nodes retained,
	// snapshots pinned); oldest is the GC watermark's age.
	if st.Mvcc.SnapshotBegins > 0 || st.Mvcc.Installs > 0 {
		fmt.Fprintf(w, "mvcc    snapread=%-8s chain=%-9s bypass=%-9s install=%-8s live=%-7d gc=%d\n",
			r(st.Mvcc.SnapshotReads, p.Mvcc.SnapshotReads),
			r(st.Mvcc.ChainReads, p.Mvcc.ChainReads),
			r(st.Lock.Bypasses, p.Lock.Bypasses),
			r(st.Mvcc.Installs, p.Mvcc.Installs),
			st.Mvcc.LiveNodes, st.Mvcc.GCNodes)
		if st.Mvcc.ActiveSnapshots > 0 {
			fmt.Fprintf(w, "        snapshots active=%d oldest=%s floor=%d\n",
				st.Mvcc.ActiveSnapshots,
				time.Duration(st.Mvcc.OldestSnapshotAgeNs).Round(time.Millisecond),
				st.Mvcc.SnapshotFloor)
		}
		// SI writers: conflict tracks first-committer-wins losers,
		// expired counts pins cut loose by MaxSnapshotAge.
		if st.Mvcc.SIBegins > 0 || st.Mvcc.SnapshotsExpired > 0 {
			fmt.Fprintf(w, "        si begin=%-9s commit=%-8s conflict=%-8s expired=%d\n",
				r(st.Mvcc.SIBegins, p.Mvcc.SIBegins),
				r(st.Mvcc.SICommits, p.Mvcc.SICommits),
				r(st.Mvcc.SIConflictAborts, p.Mvcc.SIConflictAborts),
				st.Mvcc.SnapshotsExpired)
		}
	}

	fmt.Fprintf(w, "\n%-12s %10s  %9s %9s %9s %9s\n",
		"latch tier", "acquires", "p50", "p90", "p99", "max")
	fmt.Fprintln(w, strings.Repeat("-", 64))
	for _, t := range st.Latches {
		fmt.Fprintf(w, "%-12s %10d  %9s %9s %9s %9s\n",
			t.Tier, t.Ops,
			ns(t.Acquire.P50Ns), ns(t.Acquire.P90Ns), ns(t.Acquire.P99Ns), ns(t.Acquire.MaxNs))
	}

	renderPhases(w, st)
	renderTail(w, st)
}

// renderPhases prints one line per (path, outcome) profile cell: the
// total latency tail plus the top phases by share of accumulated wall
// time. Shares are estimated from mean*count per phase histogram, so
// they are approximate under the factor-of-two bucketing, but they
// answer the triage question — where do these transactions spend time.
func renderPhases(w *os.File, st *server.StatsJSON) {
	if len(st.Phases) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-20s %10s  %9s %9s %9s  %s\n",
		"phase profile", "txns", "p50", "p99", "max", "top phases by time")
	fmt.Fprintln(w, strings.Repeat("-", 90))
	for _, cell := range st.Phases {
		type share struct {
			name string
			ns   float64
		}
		total := float64(cell.Total.MeanNs) * float64(cell.Total.Count)
		shares := make([]share, 0, len(cell.Phase))
		for name, h := range cell.Phase {
			shares = append(shares, share{name, float64(h.MeanNs) * float64(h.Count)})
		}
		sort.Slice(shares, func(i, j int) bool { return shares[i].ns > shares[j].ns })
		var top []string
		for i, s := range shares {
			if i == 3 || s.ns <= 0 {
				break
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * s.ns / total
			}
			top = append(top, fmt.Sprintf("%s %.0f%%", s.name, pct))
		}
		fmt.Fprintf(w, "%-20s %10d  %9s %9s %9s  %s\n",
			cell.Path+"/"+cell.Outcome, cell.Count,
			ns(cell.Total.P50Ns), ns(cell.Total.P99Ns), ns(cell.Total.MaxNs),
			strings.Join(top, "  "))
	}
}

// renderTail prints the worst-K slow-transaction reservoir (top few
// entries with their dominant phase) and the incident count from the
// stall flight recorder.
func renderTail(w *os.File, st *server.StatsJSON) {
	if st.Slow.Admitted > 0 && len(st.Slow.Entries) > 0 {
		fmt.Fprintf(w, "\nslow    admitted=%d rotated=%d window=%s  worst:\n",
			st.Slow.Admitted, st.Slow.Rotated, time.Duration(st.Slow.WindowNs).Round(time.Second))
		for i, e := range st.Slow.Entries {
			if i == 5 {
				break
			}
			dom, domNs := "", int64(0)
			for name, v := range e.Phase {
				if v > domNs {
					dom, domNs = name, v
				}
			}
			detail := ""
			if dom != "" {
				detail = fmt.Sprintf("  (%s %s)", dom, ns(domNs))
			}
			fmt.Fprintf(w, "        txn=%-8d %s/%s %s%s\n",
				e.Txn, e.Path, e.Outcome, ns(e.TotalNs), detail)
		}
	}
	if st.Incidents > 0 {
		fmt.Fprintf(w, "\nINCIDENTS %d captured — inspect /incidents on the observability port\n",
			st.Incidents)
	}
}

// ns renders a nanosecond figure compactly (the bucket resolution is
// a factor of two, so sub-microsecond precision would be noise).
func ns(v int64) string {
	d := time.Duration(v)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", v)
}
