// Command hydra-cli is an interactive client for hydra-server: a
// small REPL over the text protocol with help, timing, and history-
// free line editing (plain stdin).
//
// Usage:
//
//	hydra-cli [-addr localhost:7654] [command...]
//
// With arguments, runs the single command and exits (scripting mode):
//
//	hydra-cli -addr :7654 SET users 1 ada
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hydra/internal/server"
)

const replHelp = `commands:
  CREATE <table>                create a table
  SET <table> <key> <value...>  upsert a row (autocommit or in txn)
  GET <table> <key>             read a row
  DEL <table> <key>             delete a row
  SCAN <table> <lo> <hi> <max>  range scan
  BEGIN | COMMIT | ABORT        explicit transaction on this connection
  CHECKPOINT                    take a fuzzy checkpoint
  STATS                         engine counters (one line)
  STATS FULL | stats            full snapshot: counters, latch tiers,
                                lock-wait tail, tracer state
  help | quit`

func main() {
	addr := flag.String("addr", "localhost:7654", "server address")
	flag.Parse()

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-cli: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := runOne(c, strings.Join(args, " ")); err != nil {
			fmt.Fprintf(os.Stderr, "hydra-cli: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("connected to %s; 'help' for commands\n", *addr)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("hydra> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch strings.ToLower(line) {
		case "":
			continue
		case "help":
			fmt.Println(replHelp)
			continue
		case "quit", "exit":
			return
		}
		start := time.Now()
		err := runOne(c, line)
		elapsed := time.Since(start).Round(time.Microsecond)
		if err != nil {
			fmt.Printf("error: %v (%v)\n", err, elapsed)
		} else {
			fmt.Printf("(%v)\n", elapsed)
		}
	}
}

// runOne parses and executes one REPL line against the client.
func runOne(c *server.Client, line string) error {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PING":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Println("PONG")
	case "CREATE":
		if len(fields) != 2 {
			return fmt.Errorf("usage: CREATE <table>")
		}
		if err := c.CreateTable(fields[1]); err != nil {
			return err
		}
		fmt.Println("OK")
	case "SET":
		if len(fields) < 4 {
			return fmt.Errorf("usage: SET <table> <key> <value>")
		}
		key, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key %q", fields[2])
		}
		if err := c.Set(fields[1], key, strings.Join(fields[3:], " ")); err != nil {
			return err
		}
		fmt.Println("OK")
	case "GET":
		if len(fields) != 3 {
			return fmt.Errorf("usage: GET <table> <key>")
		}
		key, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key %q", fields[2])
		}
		v, err := c.Get(fields[1], key)
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", v)
	case "DEL":
		if len(fields) != 3 {
			return fmt.Errorf("usage: DEL <table> <key>")
		}
		key, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key %q", fields[2])
		}
		if err := c.Del(fields[1], key); err != nil {
			return err
		}
		fmt.Println("OK")
	case "SCAN":
		if len(fields) != 5 {
			return fmt.Errorf("usage: SCAN <table> <lo> <hi> <max>")
		}
		lo, err1 := strconv.ParseUint(fields[2], 10, 64)
		hi, err2 := strconv.ParseUint(fields[3], 10, 64)
		max, err3 := strconv.Atoi(fields[4])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad range arguments")
		}
		rows, err := c.Scan(fields[1], lo, hi, max)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%12d  %q\n", r.Key, r.Value)
		}
		fmt.Printf("%d row(s)\n", len(rows))
	case "BEGIN":
		if err := c.Begin(); err != nil {
			return err
		}
		fmt.Println("OK")
	case "COMMIT":
		if err := c.Commit(); err != nil {
			return err
		}
		fmt.Println("OK")
	case "ABORT":
		if err := c.Abort(); err != nil {
			return err
		}
		fmt.Println("OK")
	case "STATS":
		if len(fields) == 2 && strings.ToUpper(fields[1]) == "FULL" {
			st, err := c.StatsFull()
			if err != nil {
				return err
			}
			printStats(st)
			return nil
		}
		s, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Println(s)
	default:
		// Pass anything else through verbatim (e.g. CHECKPOINT).
		reply, err := c.Raw(line)
		if err != nil {
			return err
		}
		fmt.Println(reply)
	}
	return nil
}

// printStats renders the full snapshot the way the harness tables do:
// counters grouped by subsystem, distributions as p50/p90/p99/max.
func printStats(st server.StatsJSON) {
	fmt.Printf("uptime      %s\n", (time.Duration(st.UptimeSec * float64(time.Second))).Round(time.Second))
	fmt.Printf("txns        commits=%d aborts=%d\n", st.Commits, st.Aborts)
	fmt.Printf("lock        acquires=%d table_ops=%d inherited=%d waits=%d\n",
		st.Lock.Acquires, st.Lock.TableOps, st.Lock.Inherited, st.Lock.Waits)
	fmt.Printf("            deadlocks=%d timeouts=%d upgrades=%d escalations=%d\n",
		st.Lock.Deadlocks, st.Lock.Timeouts, st.Lock.Upgrades, st.Lock.Escalations)
	fmt.Printf("lock heads  allocs=%d recycles=%d retires=%d heat_evictions=%d\n",
		st.Lock.HeadAllocs, st.Lock.HeadRecycles, st.Lock.HeadRetires, st.Lock.HeatEvictions)
	if st.LockWait.Count > 0 {
		fmt.Printf("lock wait   %s\n", st.LockWait.Summary)
	}
	fmt.Printf("log         inserts=%d bytes=%d flushes=%d mutex_acquires=%d group_inserts=%d\n",
		st.Log.Inserts, st.Log.InsertedBytes, st.Log.Flushes, st.Log.MutexAcquires, st.Log.GroupInserts)
	if st.Log.Flushes > 0 {
		fmt.Printf("            group-commit batch=%.1f records/flush\n",
			float64(st.Log.Inserts)/float64(st.Log.Flushes))
		fmt.Printf("            flush IO: writes=%d syncs=%d (%.2f writes/flush)\n",
			st.Log.FlushWrites, st.Log.FlushSyncs,
			float64(st.Log.FlushWrites)/float64(st.Log.Flushes))
	}
	if st.Log.DevWrites > 0 || st.Log.DevSyncs > 0 {
		fmt.Printf("log device  writes=%d vec_writes=%d syncs=%d seg_syncs=%d seg_sync_skips=%d\n",
			st.Log.DevWrites, st.Log.DevVecWrites, st.Log.DevSyncs,
			st.Log.DevSegSyncs, st.Log.DevSegSyncSkips)
	}
	hitPct := 0.0
	if tot := st.Buffer.Hits + st.Buffer.Misses; tot > 0 {
		hitPct = 100 * float64(st.Buffer.Hits) / float64(tot)
	}
	fmt.Printf("buffer      hits=%d misses=%d (%.2f%% hit) evictions=%d writebacks=%d\n",
		st.Buffer.Hits, st.Buffer.Misses, hitPct, st.Buffer.Evictions, st.Buffer.Writebacks)
	if st.Dora.SinglePartition+st.Dora.CrossPartition > 0 {
		fmt.Printf("dora        actions=%d single=%d cross=%d rvps=%d local_waits=%d timeouts=%d\n",
			st.Dora.ActionsExecuted, st.Dora.SinglePartition, st.Dora.CrossPartition,
			st.Dora.RendezvousCrossed, st.Dora.LocalWaits, st.Dora.Timeouts)
		fmt.Printf("            batches=%d jobs=%d service %s\n",
			st.Dora.Batches, st.Dora.BatchedJobs, st.Dora.Service.Summary)
	}
	if st.Mvcc.SnapshotBegins > 0 || st.Mvcc.Installs > 0 {
		fmt.Printf("mvcc        snapshots=%d reads=%d chain_reads=%d lock_bypasses=%d\n",
			st.Mvcc.SnapshotBegins, st.Mvcc.SnapshotReads, st.Mvcc.ChainReads, st.Lock.Bypasses)
		fmt.Printf("            installs=%d live_nodes=%d gc_nodes=%d sweeps=%d floor=%d active=%d\n",
			st.Mvcc.Installs, st.Mvcc.LiveNodes, st.Mvcc.GCNodes, st.Mvcc.GCSweeps,
			st.Mvcc.SnapshotFloor, st.Mvcc.ActiveSnapshots)
		fmt.Printf("            si_begins=%d si_commits=%d si_conflict_aborts=%d snapshots_expired=%d\n",
			st.Mvcc.SIBegins, st.Mvcc.SICommits, st.Mvcc.SIConflictAborts, st.Mvcc.SnapshotsExpired)
	}
	if len(st.Latches) > 0 {
		fmt.Println("latch tiers (sampled time-to-acquire)")
		for _, t := range st.Latches {
			fmt.Printf("  %-12s ops=%-10d %s\n", t.Tier, t.Ops, t.Acquire.Summary)
		}
	}
	if len(st.Phases) > 0 {
		fmt.Println("phase profile (per path/outcome, critical-path wall time)")
		for _, cell := range st.Phases {
			fmt.Printf("  %-20s n=%-10d total %s\n",
				cell.Path+"/"+cell.Outcome, cell.Count, cell.Total.Summary)
			names := make([]string, 0, len(cell.Phase))
			for name := range cell.Phase {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("    %-18s %s\n", name, cell.Phase[name].Summary)
			}
		}
	}
	if st.Slow.Admitted > 0 {
		fmt.Printf("slow txns   admitted=%d rotated=%d window=%s retained=%d\n",
			st.Slow.Admitted, st.Slow.Rotated,
			time.Duration(st.Slow.WindowNs).Round(time.Second), len(st.Slow.Entries))
		for i, e := range st.Slow.Entries {
			if i == 5 {
				fmt.Printf("  ... %d more\n", len(st.Slow.Entries)-i)
				break
			}
			fmt.Printf("  txn=%-10d %s/%s total=%s\n",
				e.Txn, e.Path, e.Outcome, time.Duration(e.TotalNs))
		}
	}
	if st.Incidents > 0 {
		fmt.Printf("incidents   %d captured (GET /incidents on the observability port)\n", st.Incidents)
	}
	fmt.Printf("tracer      enabled=%v events=%d\n", st.TraceEnabled, st.TraceEvents)
}
