// Command hydra-cli is an interactive client for hydra-server: a
// small REPL over the text protocol with help, timing, and history-
// free line editing (plain stdin).
//
// Usage:
//
//	hydra-cli [-addr localhost:7654] [command...]
//
// With arguments, runs the single command and exits (scripting mode):
//
//	hydra-cli -addr :7654 SET users 1 ada
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hydra/internal/server"
)

const replHelp = `commands:
  CREATE <table>                create a table
  SET <table> <key> <value...>  upsert a row (autocommit or in txn)
  GET <table> <key>             read a row
  DEL <table> <key>             delete a row
  SCAN <table> <lo> <hi> <max>  range scan
  BEGIN | COMMIT | ABORT        explicit transaction on this connection
  CHECKPOINT                    take a fuzzy checkpoint
  STATS                         engine counters
  help | quit`

func main() {
	addr := flag.String("addr", "localhost:7654", "server address")
	flag.Parse()

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-cli: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := runOne(c, strings.Join(args, " ")); err != nil {
			fmt.Fprintf(os.Stderr, "hydra-cli: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("connected to %s; 'help' for commands\n", *addr)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("hydra> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch strings.ToLower(line) {
		case "":
			continue
		case "help":
			fmt.Println(replHelp)
			continue
		case "quit", "exit":
			return
		}
		start := time.Now()
		err := runOne(c, line)
		elapsed := time.Since(start).Round(time.Microsecond)
		if err != nil {
			fmt.Printf("error: %v (%v)\n", err, elapsed)
		} else {
			fmt.Printf("(%v)\n", elapsed)
		}
	}
}

// runOne parses and executes one REPL line against the client.
func runOne(c *server.Client, line string) error {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PING":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Println("PONG")
	case "CREATE":
		if len(fields) != 2 {
			return fmt.Errorf("usage: CREATE <table>")
		}
		if err := c.CreateTable(fields[1]); err != nil {
			return err
		}
		fmt.Println("OK")
	case "SET":
		if len(fields) < 4 {
			return fmt.Errorf("usage: SET <table> <key> <value>")
		}
		key, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key %q", fields[2])
		}
		if err := c.Set(fields[1], key, strings.Join(fields[3:], " ")); err != nil {
			return err
		}
		fmt.Println("OK")
	case "GET":
		if len(fields) != 3 {
			return fmt.Errorf("usage: GET <table> <key>")
		}
		key, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key %q", fields[2])
		}
		v, err := c.Get(fields[1], key)
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", v)
	case "DEL":
		if len(fields) != 3 {
			return fmt.Errorf("usage: DEL <table> <key>")
		}
		key, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key %q", fields[2])
		}
		if err := c.Del(fields[1], key); err != nil {
			return err
		}
		fmt.Println("OK")
	case "SCAN":
		if len(fields) != 5 {
			return fmt.Errorf("usage: SCAN <table> <lo> <hi> <max>")
		}
		lo, err1 := strconv.ParseUint(fields[2], 10, 64)
		hi, err2 := strconv.ParseUint(fields[3], 10, 64)
		max, err3 := strconv.Atoi(fields[4])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad range arguments")
		}
		rows, err := c.Scan(fields[1], lo, hi, max)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%12d  %q\n", r.Key, r.Value)
		}
		fmt.Printf("%d row(s)\n", len(rows))
	case "BEGIN":
		if err := c.Begin(); err != nil {
			return err
		}
		fmt.Println("OK")
	case "COMMIT":
		if err := c.Commit(); err != nil {
			return err
		}
		fmt.Println("OK")
	case "ABORT":
		if err := c.Abort(); err != nil {
			return err
		}
		fmt.Println("OK")
	case "STATS":
		s, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Println(s)
	default:
		// Pass anything else through verbatim (e.g. CHECKPOINT).
		reply, err := c.Raw(line)
		if err != nil {
			return err
		}
		fmt.Println(reply)
	}
	return nil
}
