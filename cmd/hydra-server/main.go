// Command hydra-server serves a hydra storage manager over TCP using
// the line protocol in internal/server.
//
// Usage:
//
//	hydra-server [-addr :7654] [-dir /path/to/data] [-config scalable]
//	             [-http :7655] [-trace]
//
// With -dir, the database is durable and ARIES recovery runs on
// restart; without it, the server is in-memory. -http starts the
// observability listener (/metrics for Prometheus, /stats for
// hydra-top, /trace for the event tracer); empty disables it. -trace
// enables transaction event recording from startup.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hydra/internal/core"
	"hydra/internal/obs"
	"hydra/internal/server"
)

func main() {
	addr := flag.String("addr", ":7654", "listen address")
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	config := flag.String("config", "scalable", "engine configuration: conventional or scalable")
	httpAddr := flag.String("http", ":7655", "observability listen address (/metrics, /stats, /trace); empty disables")
	trace := flag.Bool("trace", false, "enable transaction event tracing at startup")
	mvcc := flag.Bool("mvcc", false, "enable MVCC version chains; autocommitted GET/SCAN run as lock-free snapshot reads")
	flag.Parse()

	var cfg core.Config
	switch *config {
	case "conventional":
		cfg = core.Conventional()
	case "scalable":
		cfg = core.Scalable()
	default:
		fmt.Fprintf(os.Stderr, "hydra-server: unknown config %q\n", *config)
		os.Exit(2)
	}
	cfg.Dir = *dir
	cfg.MVCC = *mvcc

	engine, err := core.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-server: open engine: %v\n", err)
		os.Exit(1)
	}
	if rep := engine.RecoveryReport; rep.Scanned > 0 {
		fmt.Printf("recovery: scanned=%d redone=%d losers=%d index-entries=%d\n",
			rep.Scanned, rep.Redone, rep.LosersUndone, rep.IndexEntries)
	}

	obs.Trace.SetEnabled(*trace)
	// The stall flight recorder runs regardless of the HTTP listener:
	// STATS FULL on the line protocol reports incidents too.
	fr := server.NewFlightRecorder(engine, server.FlightOptions{})
	fr.Start()
	defer fr.Stop()
	if *httpAddr != "" {
		go func() {
			hs := &http.Server{
				Addr:              *httpAddr,
				Handler:           server.NewMetricsMux(engine, fr),
				ReadHeaderTimeout: 5 * time.Second,
			}
			if err := hs.ListenAndServe(); err != nil {
				fmt.Fprintf(os.Stderr, "hydra-server: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("hydra-server: metrics on http://%s/metrics\n", *httpAddr)
	}

	srv := server.New(engine)
	srv.SetFlightRecorder(fr)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	fmt.Printf("hydra-server: listening on %s (config=%s, dir=%q)\n", *addr, *config, *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydra-server: %v\n", err)
		}
	case s := <-sig:
		fmt.Printf("hydra-server: %v, shutting down\n", s)
	}
	srv.Close()
	if err := engine.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-server: close: %v\n", err)
		os.Exit(1)
	}
}
