GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/lock/... ./internal/core/... ./internal/buffer/... ./internal/wal/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkLockAcquireRelease|BenchmarkCommitPipeline|BenchmarkPoolFetchParallel' -benchmem ./internal/lock/ ./internal/core/ ./internal/buffer/
