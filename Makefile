GO ?= go

.PHONY: build test race vet lint stress bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/lock/... ./internal/core/... ./internal/buffer/... ./internal/wal/... ./internal/obs/... ./internal/server/...

vet:
	$(GO) vet ./...

# lint runs hydra-vet (internal/analysis) over the whole module,
# including test files, via the go vet -vettool protocol.
lint:
	$(GO) build -o bin/hydra-vet ./cmd/hydra-vet
	$(GO) vet -vettool=$(abspath bin/hydra-vet) ./...

# stress exercises the hydradebug runtime assertions (latch-order and
# pool-ownership checks compiled in via the build tag).
stress:
	$(GO) test -tags hydradebug -count=1 ./internal/invariant/... ./internal/latch/... ./internal/buffer/... ./internal/wal/... ./internal/core/... ./internal/sync2/...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkLockAcquireRelease|BenchmarkCommitPipeline|BenchmarkPoolFetchParallel' -benchmem ./internal/lock/ ./internal/core/ ./internal/buffer/

# bench-smoke compiles and runs every benchmark for a single
# iteration: it catches benchmarks that crash or no longer build
# without paying for a timed run (CI's guard against bench rot).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
