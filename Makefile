GO ?= go
VET_SUMMARIES := .hydra-vet/summaries.json
VET_BASELINE  := vet.baseline.json

.PHONY: build test race vet lint vet-baseline vet-update-baseline stress stress-dora bench bench-json bench-wal bench-lock bench-dora bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/lock/... ./internal/core/... ./internal/buffer/... ./internal/wal/... ./internal/obs/... ./internal/server/... ./internal/dora/... ./internal/sync2/...

# stress-dora runs the DORA mixed-path stress tests under the race
# detector: fast-path, cross-partition and timeout-cancel transactions
# over few executors with tiny queue depths, plus engine close under
# load and the canceled-parked-action regression.
stress-dora:
	$(GO) test -race -count=1 -run 'TestStressMixedPaths|TestCanceledParkedActionNeverRuns|TestCloseUnderLoad' ./internal/dora/

vet:
	$(GO) vet ./...

# lint runs hydra-vet (internal/analysis) over the whole module in two
# passes. The standalone pass loads the full source tree, so the
# latchsum closure resolves cross-package call chains from source, and
# it persists the computed summaries; the go vet -vettool pass (which
# sees one package at a time, but additionally covers test files)
# reads them back via HYDRA_VET_SUMMARIES so dora → core → lock chains
# stay visible there too.
lint:
	$(GO) build -o bin/hydra-vet ./cmd/hydra-vet
	./bin/hydra-vet -summaries $(VET_SUMMARIES) ./...
	HYDRA_VET_SUMMARIES=$(abspath $(VET_SUMMARIES)) $(GO) vet -vettool=$(abspath bin/hydra-vet) ./...

# vet-baseline asserts hydra-vet reports exactly the committed
# baseline: zero new findings (matched by file/analyzer/message,
# ignoring line numbers). CI runs this; the baseline is committed.
vet-baseline:
	$(GO) build -o bin/hydra-vet ./cmd/hydra-vet
	./bin/hydra-vet -tests -json -baseline $(VET_BASELINE) ./...

# vet-update-baseline regenerates the committed baseline from the
# current tree. Run it (and review the diff) after intentionally
# accepting a finding instead of fixing or marker-suppressing it.
vet-update-baseline:
	$(GO) build -o bin/hydra-vet ./cmd/hydra-vet
	./bin/hydra-vet -tests -write-baseline $(VET_BASELINE) ./...

# stress exercises the hydradebug runtime assertions (latch-order and
# pool-ownership checks compiled in via the build tag). The lock
# package is included for the freelist pool-ownership assertions on
# the lock-head retire/recycle protocol.
stress:
	$(GO) test -tags hydradebug -count=1 ./internal/invariant/... ./internal/latch/... ./internal/buffer/... ./internal/wal/... ./internal/core/... ./internal/sync2/... ./internal/lock/...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkLockAcquireRelease|BenchmarkCommitPipeline|BenchmarkPoolFetchParallel' -benchmem ./internal/lock/ ./internal/core/ ./internal/buffer/

# bench-json runs the full experiment suite and archives the results
# as a dated machine-readable document (schema hydra-bench/v1, see
# EXPERIMENTS.md "Machine-readable runs"). Override BENCH_SCALE=full
# for report sizing. This is the only sanctioned bench artifact path:
# do not commit raw `make bench | tee` dumps (bench_full_output.txt is
# gitignored for exactly that reason) — archive a dated BENCH_*.json.
BENCH_SCALE ?= quick
bench-json:
	$(GO) run ./cmd/hydra-bench -scale $(BENCH_SCALE) -json BENCH_$$(date +%Y-%m-%d).json

# bench-wal runs the WAL flush-path benchmarks with enough iterations
# for the per-flush metrics (writes/flush, segsyncs/sync) to settle:
# the numbers cited in EXPERIMENTS.md E11 come from this target.
bench-wal:
	$(GO) test -run '^$$' -bench 'BenchmarkFlushWrap|BenchmarkSegmentedSync|BenchmarkSegmentedWriteVec|BenchmarkLogAppendSegmented' -benchtime 200x -benchmem ./internal/wal/

# bench-lock runs the lock-manager benchmarks, including the
# distinct-name churn shape that exercises the lock-head freelist: the
# allocs/op and recycle-ratio figures in EXPERIMENTS.md E12 come from
# this target.
bench-lock:
	$(GO) test -run '^$$' -bench 'BenchmarkLockAcquireRelease|BenchmarkAcquireReleaseChurn' -benchtime 2s -benchmem ./internal/lock/

# bench-dora runs the DORA execution-path benchmarks: the
# single-partition fast path allocs/op and the cross-partition
# rendezvous figures in EXPERIMENTS.md E13 come from this target.
bench-dora:
	$(GO) test -run '^$$' -bench 'BenchmarkDoraExecSingle|BenchmarkDoraExecCross' -benchtime 2s -benchmem ./internal/dora/

# bench-smoke compiles and runs every benchmark for a single
# iteration: it catches benchmarks that crash or no longer build
# without paying for a timed run (CI's guard against bench rot).
# ./... picks up the WAL flush benchmarks (bench_test.go) too; the
# explicit wal run below it asserts the vectored path's counters are
# live, not just that the benchmarks compile. The final server tests
# assert the hydra_dora_* families appear in /metrics and /stats under
# live DORA load, the hydra_mvcc_* families (and the lock-bypass
# counter) under snapshot-read traffic, and that the transaction
# phase-accounting families
# (hydra_txn_phase_*, the slow-transaction reservoir counters, and the
# hydra_incidents_total kinds) appear under committed traffic. The
# accounting itself is budgeted at <=3% ns/op and zero extra allocs/op
# on the commit/lock/DORA hot paths — regressions show up in the bench
# targets above against the figures recorded in EXPERIMENTS.md.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench 'BenchmarkFlushWrap|BenchmarkSegmentedSync' -benchtime 20x ./internal/wal/
	$(GO) test -run '^$$' -bench 'BenchmarkAcquireReleaseChurn' -benchtime 20x ./internal/lock/
	$(GO) test -run 'TestDoraMetricsExposition|TestPhaseMetricsExposition|TestMVCCMetricsExposition' -count=1 ./internal/server/
