// Package hydra's top-level benchmarks regenerate every experiment in
// EXPERIMENTS.md as a testing.B target — one benchmark per table or
// figure of the reproduction. Sub-benchmarks name the systems under
// comparison, so `go test -bench=E1` prints the conventional-vs-DORA
// pair directly.
//
// The bench numbers are the per-operation view; the paper-shaped
// sweep tables come from `go run ./cmd/hydra-bench`.
package hydra

import (
	"testing"
	"time"

	"hydra/internal/buffer"
	"hydra/internal/cmpmodel"
	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/lock"
	"hydra/internal/rng"
	"hydra/internal/staged"
	"hydra/internal/sync2"
	"hydra/internal/wal"
	"hydra/internal/workload"
)

// BenchmarkE1_DORAvsConventional: TATP transactions per second under
// thread-to-transaction (centralized locking) vs thread-to-data.
func BenchmarkE1_DORAvsConventional(b *testing.B) {
	const subscribers = 10000
	b.Run("conventional", func(b *testing.B) {
		e, err := core.Open(core.Conventional())
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		w, err := workload.SetupTATP(e, subscribers)
		if err != nil {
			b.Fatal(err)
		}
		x := workload.LockExecutor{Engine: e}
		var seq uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			seq++
			src := rng.New(seq)
			for pb.Next() {
				if err := w.RunOne(src, x); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("dora", func(b *testing.B) {
		e, err := core.Open(core.Scalable())
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		w, err := workload.SetupTATP(e, subscribers)
		if err != nil {
			b.Fatal(err)
		}
		d := dora.New(e, dora.Options{Executors: 8})
		defer d.Close()
		x := workload.DoraExecutor{Engine: d}
		var seq uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			seq++
			src := rng.New(seq)
			for pb.Next() {
				if err := w.RunOne(src, x); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkE2_LogScalability: concurrent 120-byte log inserts through
// each insert algorithm.
func BenchmarkE2_LogScalability(b *testing.B) {
	for _, kind := range wal.BufferKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			l, err := wal.New(wal.NewMem(), wal.Options{Kind: kind, BufferSize: 16 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 120)
			b.SetBytes(int64(wal.EncodedSize(len(payload))))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(&wal.Record{Type: wal.RecUpdate, Payload: payload}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkE3_SpinVsBlock: contended lock/unlock cycles with a short
// critical section, per primitive.
func BenchmarkE3_SpinVsBlock(b *testing.B) {
	for _, kind := range sync2.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			l := sync2.New(kind)
			var shared uint64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					shared++
					l.Unlock()
				}
			})
			_ = shared
		})
	}
}

// BenchmarkE4_SingleThreadVsScalable: TPC-B transactions on both
// engine configurations; run with -cpu 1,8 to see the crossover.
func BenchmarkE4_SingleThreadVsScalable(b *testing.B) {
	for _, sys := range []struct {
		name string
		cfg  core.Config
	}{
		{"conventional", core.Conventional()},
		{"scalable", core.Scalable()},
	} {
		sys := sys
		b.Run(sys.name, func(b *testing.B) {
			e, err := core.Open(sys.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			w, err := workload.SetupTPCB(e, 4, 10, 1000)
			if err != nil {
				b.Fatal(err)
			}
			x := workload.LockExecutor{Engine: e}
			var seq uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seq++
				src := rng.New(seq)
				for pb.Next() {
					if err := w.RunOne(src, x); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if err := w.Check(e); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE5_SLI: skewed microbenchmark with and without speculative
// lock inheritance; reports lock-table operations per transaction.
func BenchmarkE5_SLI(b *testing.B) {
	for _, useSLI := range []bool{false, true} {
		useSLI := useSLI
		name := "sli-off"
		if useSLI {
			name = "sli-on"
		}
		b.Run(name, func(b *testing.B) {
			e, err := core.Open(core.Scalable())
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			w, err := workload.SetupMicro(e, 20000, 0.2, 0.9, 32)
			if err != nil {
				b.Fatal(err)
			}
			before := e.StatsSnapshot().Lock
			var seq uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seq++
				var agent *lock.Agent
				if useSLI {
					agent = e.Locks().NewAgent()
					defer agent.Close()
				}
				x := workload.LockExecutor{Engine: e, Agent: agent}
				s := w.NewSampler(seq)
				for pb.Next() {
					if err := w.RunOne(s, x); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			after := e.StatsSnapshot().Lock
			if b.N > 0 {
				b.ReportMetric(float64(after.TableOps-before.TableOps)/float64(b.N), "tableops/op")
				b.ReportMetric(float64(after.Inherited-before.Inherited)/float64(b.N), "inherited/op")
			}
		})
	}
}

// BenchmarkE6_CMPModel: one full model evaluation (the figure
// generator evaluates thousands of configurations).
func BenchmarkE6_CMPModel(b *testing.B) {
	m := cmpmodel.DefaultMachine()
	for _, w := range []cmpmodel.Workload{cmpmodel.OLTP(), cmpmodel.DSS()} {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := cmpmodel.Evaluate(m, w)
				if r.TPS <= 0 {
					b.Fatal("model returned non-positive throughput")
				}
			}
		})
	}
}

// BenchmarkE7_SharedScans: one aggregate query per iteration, with
// concurrent iterations sharing (or not) the physical scan.
func BenchmarkE7_SharedScans(b *testing.B) {
	for _, shared := range []bool{false, true} {
		shared := shared
		name := "private"
		if shared {
			name = "shared"
		}
		b.Run(name, func(b *testing.B) {
			e, err := core.Open(core.Scalable())
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if _, err := workload.SetupMicro(e, 20000, 0, 0, 16); err != nil {
				b.Fatal(err)
			}
			tbl, err := e.Table("micro_kv")
			if err != nil {
				b.Fatal(err)
			}
			se := staged.New(e, staged.Options{SharedScans: shared})
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := se.Execute(staged.Query{Table: tbl})
					if err != nil {
						b.Error(err)
						return
					}
					if res.Count != 20000 {
						b.Errorf("query saw %d rows", res.Count)
						return
					}
				}
			})
			b.StopTimer()
			st := se.StatsSnapshot()
			if st.Queries > 0 {
				b.ReportMetric(float64(st.PhysicalScans)/float64(st.Queries), "scans/query")
			}
		})
	}
}

// BenchmarkE8_RecoveryELR has two parts: commit throughput on a hot
// key with/without early lock release, and full ARIES restart time
// for a fixed log.
func BenchmarkE8_RecoveryELR(b *testing.B) {
	for _, elr := range []bool{false, true} {
		elr := elr
		name := "commit-elr-off"
		if elr {
			name = "commit-elr-on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Scalable()
			cfg.ELR = elr
			dev := wal.NewMem()
			dev.SyncFn = func() { time.Sleep(50 * time.Microsecond) }
			e, err := core.OpenWith(cfg, buffer.NewMemStore(), dev)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			w, err := workload.SetupMicro(e, 16, 1.0, 0, 16)
			if err != nil {
				b.Fatal(err)
			}
			x := workload.LockExecutor{Engine: e}
			var seq uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seq++
				s := w.NewSampler(seq)
				for pb.Next() {
					if err := w.RunOne(s, x); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}

	b.Run("restart", func(b *testing.B) {
		// Build one crashed image, then measure restart repeatedly;
		// redo is idempotent so each restart does the same work.
		store := buffer.NewMemStore()
		dev := wal.NewMem()
		e, err := core.OpenWith(core.Conventional(), store, dev)
		if err != nil {
			b.Fatal(err)
		}
		tbl, err := e.CreateTable("t")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			i := i
			if err := e.Exec(func(tx *core.Txn) error {
				return tx.Insert(tbl, uint64(i), workload.U64(uint64(i)))
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Log().Flush(); err != nil {
			b.Fatal(err)
		}
		e.Log().Close() // crash
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e2, err := core.OpenWith(core.Conventional(), store, dev)
			if err != nil {
				b.Fatal(err)
			}
			if e2.RecoveryReport.Scanned == 0 {
				b.Fatal("restart scanned nothing")
			}
			b.StopTimer()
			e2.Log().Close() // crash again rather than checkpointing
			b.StartTimer()
		}
	})
}
